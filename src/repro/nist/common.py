"""Shared infrastructure of the NIST SP 800-22 test implementations.

Every statistical test consumes a boolean bit array and produces one or more
:class:`TestOutcome` values (some tests — serial, cumulative sums, random
excursions — are defined with multiple p-values).  A test whose input is too
short raises :class:`InsufficientDataError`, which the suite treats as "not
applicable" rather than failure; this matches how the reference NIST tool
restricts its battery by sequence length (the paper runs the battery on
96-bit streams, where only a subset of tests applies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.special import erfc, gammaincc

__all__ = [
    "ALPHA",
    "TestOutcome",
    "InsufficientDataError",
    "igamc",
    "normalized_erfc",
    "as_bits",
    "require_length",
]

#: The SP 800-22 significance level: p-values below this fail.
ALPHA = 0.01


class InsufficientDataError(ValueError):
    """The sequence is too short for this test to be applicable."""


@dataclass(frozen=True)
class TestOutcome:
    """Result of one statistical test on one bit sequence.

    Attributes:
        test: canonical test name, e.g. ``"Frequency"``.
        p_value: the test's p-value in [0, 1].
        statistic: the underlying test statistic (chi-square, z, ...).
        variant: distinguishes multiple p-values of one test, e.g.
            ``"forward"`` for cumulative sums or ``"x=+1"`` for excursions.
        details: free-form numeric context for reports and debugging.
    """

    test: str
    p_value: float
    statistic: float
    variant: str | None = None
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not np.isfinite(self.p_value) or not -1e-9 <= self.p_value <= 1.0 + 1e-9:
            raise ValueError(
                f"{self.test}: p-value {self.p_value} outside [0, 1]"
            )
        object.__setattr__(
            self, "p_value", float(min(max(self.p_value, 0.0), 1.0))
        )

    @property
    def passed(self) -> bool:
        """True when the sequence is consistent with randomness."""
        return self.p_value >= ALPHA

    @property
    def label(self) -> str:
        """Test name plus variant, e.g. ``"CumulativeSums (forward)"``."""
        if self.variant is None:
            return self.test
        return f"{self.test} ({self.variant})"


def igamc(a: float, x: float) -> float:
    """The complemented incomplete gamma function Q(a, x) of SP 800-22."""
    if a <= 0.0:
        raise ValueError(f"igamc requires a > 0, got {a}")
    if x < 0.0:
        raise ValueError(f"igamc requires x >= 0, got {x}")
    return float(gammaincc(a, x))


def normalized_erfc(value: float) -> float:
    """``erfc(value / sqrt(2))`` — the z-to-p mapping SP 800-22 uses."""
    return float(erfc(value / np.sqrt(2.0)))


def as_bits(sequence) -> np.ndarray:
    """Coerce a sequence (bools, 0/1 ints, or '0'/'1' string) to a bit array."""
    if isinstance(sequence, str):
        cleaned = sequence.replace(" ", "").replace("\n", "")
        if not cleaned or any(c not in "01" for c in cleaned):
            raise ValueError("bit strings may contain only 0, 1 and whitespace")
        return np.array([c == "1" for c in cleaned], dtype=bool)
    bits = np.asarray(sequence)
    if bits.ndim != 1:
        raise ValueError(f"expected a 1-D bit sequence, got shape {bits.shape}")
    if bits.dtype != bool:
        unique = np.unique(bits)
        if not np.all(np.isin(unique, (0, 1))):
            raise ValueError("bit sequences must contain only 0s and 1s")
        bits = bits.astype(bool)
    return bits


def require_length(bits: np.ndarray, minimum: int, test: str) -> None:
    """Raise :class:`InsufficientDataError` when a sequence is too short."""
    if len(bits) < minimum:
        raise InsufficientDataError(
            f"{test} needs at least {minimum} bits, got {len(bits)}"
        )
