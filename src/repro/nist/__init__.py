"""A from-scratch implementation of the NIST SP 800-22 statistical test
suite (Rev 1a), used by the paper to certify PUF-output randomness
(Tables I and II).

All fifteen tests are implemented; the suite runner skips tests whose
minimum input length exceeds the sequence (on the paper's 96-bit streams
roughly half the battery applies, as with the reference tool).
"""

from .basic_tests import (
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test,
    runs_test,
)
from .common import ALPHA, InsufficientDataError, TestOutcome, as_bits, igamc
from .complexity import berlekamp_massey, linear_complexity_test
from .entropy_tests import approximate_entropy_test, pattern_counts, serial_test
from .excursions import random_excursions_test, random_excursions_variant_test
from .spectral import binary_matrix_rank, dft_test, rank_test
from .suite import (
    SuiteConfig,
    SuiteReport,
    TestRow,
    evaluate_sequences,
    minimum_pass_proportion,
    run_battery,
)
from .templates import (
    aperiodic_templates,
    non_overlapping_template_test,
    overlapping_template_test,
)
from .universal import universal_test

__all__ = [
    "block_frequency_test",
    "cumulative_sums_test",
    "frequency_test",
    "longest_run_test",
    "runs_test",
    "ALPHA",
    "InsufficientDataError",
    "TestOutcome",
    "as_bits",
    "igamc",
    "berlekamp_massey",
    "linear_complexity_test",
    "approximate_entropy_test",
    "pattern_counts",
    "serial_test",
    "random_excursions_test",
    "random_excursions_variant_test",
    "binary_matrix_rank",
    "dft_test",
    "rank_test",
    "SuiteConfig",
    "SuiteReport",
    "TestRow",
    "evaluate_sequences",
    "minimum_pass_proportion",
    "run_battery",
    "aperiodic_templates",
    "non_overlapping_template_test",
    "overlapping_template_test",
    "universal_test",
]
