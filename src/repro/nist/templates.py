"""Template matching tests (SP 800-22 Secs. 2.7-2.8).

The non-overlapping test scans blocks for a template, restarting the scan
after each hit; the overlapping test advances one bit at a time.  Aperiodic
templates (those that cannot overlap a shifted copy of themselves) are
generated programmatically for any length, matching the sets shipped with
the reference implementation.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .common import TestOutcome, as_bits, igamc, require_length

__all__ = [
    "aperiodic_templates",
    "non_overlapping_template_test",
    "overlapping_template_test",
]


def _is_aperiodic(bits: tuple[int, ...]) -> bool:
    """True when no proper shift of the template matches its own tail."""
    m = len(bits)
    for shift in range(1, m):
        if bits[shift:] == bits[: m - shift]:
            return False
    return True


def aperiodic_templates(length: int) -> list[tuple[int, ...]]:
    """All aperiodic 0/1 templates of a given length, in numeric order."""
    if length < 2:
        raise ValueError(f"template length must be >= 2, got {length}")
    if length > 16:
        raise ValueError(f"template length {length} too large to enumerate")
    templates = []
    for code in range(2**length):
        bits = tuple((code >> (length - 1 - i)) & 1 for i in range(length))
        if _is_aperiodic(bits):
            templates.append(bits)
    return templates


def _count_non_overlapping(block: np.ndarray, template: np.ndarray) -> int:
    """Occurrences of the template, skipping past each hit (Sec. 2.7)."""
    m = len(template)
    count = 0
    position = 0
    limit = len(block) - m
    while position <= limit:
        if np.array_equal(block[position : position + m], template):
            count += 1
            position += m
        else:
            position += 1
    return count


def non_overlapping_template_test(
    sequence,
    template=None,
    block_count: int = 8,
) -> TestOutcome:
    """Non-overlapping template matching test (Sec. 2.7).

    Example from the specification: sequence ``"10100100101110010110"``
    with template ``001`` and 2 blocks of 10 bits gives p = 0.344154.

    Args:
        template: the target pattern (defaults to ``0...01`` of length 9,
            truncated to 3 for short sequences).
        block_count: number of independent blocks ``N``.
    """
    bits = as_bits(sequence)
    if template is None:
        template = (0, 0, 1) if len(bits) < 8 * 9 * 2 else (0,) * 8 + (1,)
    template = np.asarray(as_bits(template), dtype=bool)
    m = len(template)
    if block_count < 1:
        raise ValueError("block_count must be >= 1")
    require_length(bits, block_count * 2 * m, "NonOverlappingTemplate")
    n = len(bits)
    block_size = n // block_count
    if block_size <= m:
        raise ValueError(
            f"blocks of {block_size} bits cannot contain the {m}-bit template"
        )
    mean = (block_size - m + 1) / 2.0**m
    variance = block_size * (1.0 / 2.0**m - (2.0 * m - 1.0) / 2.0 ** (2 * m))
    counts = np.array(
        [
            _count_non_overlapping(
                bits[j * block_size : (j + 1) * block_size], template
            )
            for j in range(block_count)
        ]
    )
    chi_square = float(np.sum((counts - mean) ** 2 / variance))
    return TestOutcome(
        test="NonOverlappingTemplate",
        p_value=igamc(block_count / 2.0, chi_square / 2.0),
        statistic=chi_square,
        variant="".join(str(int(b)) for b in template),
        details={
            "counts": counts.tolist(),
            "mean": mean,
            "variance": variance,
            "block_size": block_size,
        },
    )


#: Category probabilities for the overlapping test with m = 9, M = 1032,
#: as printed in SP 800-22 Sec. 3.8.  Kept for regression tests; the test
#: itself computes exact probabilities for its actual parameters via
#: :mod:`repro.nist.overlapping_pi` (which reproduces these to 5e-7).
_OVERLAPPING_PI = (
    0.364091,
    0.185659,
    0.139381,
    0.100571,
    0.0704323,
    0.139865,
)
_OVERLAPPING_M = 1032
_OVERLAPPING_TEMPLATE_LENGTH = 9


def _count_overlapping(block: np.ndarray, template: np.ndarray) -> int:
    """Occurrences of the template with single-bit stepping (Sec. 2.8)."""
    m = len(template)
    windows = np.lib.stride_tricks.sliding_window_view(block, m)
    return int(np.sum(np.all(windows == template, axis=1)))


@lru_cache(maxsize=16)
def _overlapping_pi(template_length: int, block_length: int) -> tuple[float, ...]:
    from .overlapping_pi import overlapping_occurrence_probabilities

    return tuple(
        overlapping_occurrence_probabilities(template_length, block_length)
    )


def overlapping_template_test(
    sequence,
    template_length: int = _OVERLAPPING_TEMPLATE_LENGTH,
    block_length: int = _OVERLAPPING_M,
) -> TestOutcome:
    """Overlapping template matching test (Sec. 2.8), all-ones template.

    Defaults to the reference parameterisation (m = 9, M = 1032, K = 5);
    other parameterisations use exactly-computed category probabilities
    (:mod:`repro.nist.overlapping_pi`).  Needs at least 5 full blocks.
    """
    if template_length < 2:
        raise ValueError("template_length must be >= 2")
    if block_length <= template_length:
        raise ValueError("block_length must exceed template_length")
    bits = as_bits(sequence)
    require_length(bits, 5 * block_length, "OverlappingTemplate")
    template = np.ones(template_length, dtype=bool)
    n = len(bits)
    block_count = n // block_length
    counts_per_category = np.zeros(6, dtype=int)
    for j in range(block_count):
        block = bits[j * block_length : (j + 1) * block_length]
        occurrences = _count_overlapping(block, template)
        counts_per_category[min(occurrences, 5)] += 1
    expected = block_count * np.asarray(
        _overlapping_pi(template_length, block_length)
    )
    chi_square = float(np.sum((counts_per_category - expected) ** 2 / expected))
    return TestOutcome(
        test="OverlappingTemplate",
        p_value=igamc(5.0 / 2.0, chi_square / 2.0),
        statistic=chi_square,
        details={
            "block_count": block_count,
            "categories": counts_per_category.tolist(),
        },
    )
