"""Maurer's universal statistical test (SP 800-22 Sec. 2.9)."""

from __future__ import annotations

import numpy as np

from .common import TestOutcome, as_bits, normalized_erfc, require_length

__all__ = ["universal_test"]

# (L, expectedValue, variance) per SP 800-22 Sec. 2.9; Q = 10 * 2**L.
_UNIVERSAL_CONSTANTS = {
    6: (5.2177052, 2.954),
    7: (6.1962507, 3.125),
    8: (7.1836656, 3.238),
    9: (8.1764248, 3.311),
    10: (9.1723243, 3.356),
    11: (10.170032, 3.384),
    12: (11.168765, 3.401),
    13: (12.168070, 3.410),
    14: (13.167693, 3.416),
    15: (14.167488, 3.419),
    16: (15.167379, 3.421),
}

# Smallest n for each block length L, per the specification's table.
_LENGTH_THRESHOLDS = (
    (1059061760, 16),
    (496435200, 15),
    (231669760, 14),
    (107560960, 13),
    (49643520, 12),
    (22753280, 11),
    (10342400, 10),
    (4654080, 9),
    (2068480, 8),
    (904960, 7),
    (387840, 6),
)


def universal_test(sequence, block_length: int | None = None) -> TestOutcome:
    """Maurer's universal test; needs at least 387 840 bits.

    Args:
        block_length: override the automatic choice of L (6..16).
    """
    bits = as_bits(sequence)
    require_length(bits, 387840, "Universal")
    n = len(bits)
    if block_length is None:
        block_length = next(L for threshold, L in _LENGTH_THRESHOLDS if n >= threshold)
    if block_length not in _UNIVERSAL_CONSTANTS:
        raise ValueError(
            f"block_length must be in 6..16, got {block_length}"
        )
    expected, variance = _UNIVERSAL_CONSTANTS[block_length]

    q = 10 * 2**block_length
    total_blocks = n // block_length
    k = total_blocks - q
    if k < 1:
        raise ValueError(
            f"sequence supplies only {total_blocks} blocks of {block_length} "
            f"bits; the initialisation segment alone needs {q}"
        )

    weights = 1 << np.arange(block_length - 1, -1, -1)
    values = (
        bits[: total_blocks * block_length]
        .reshape(total_blocks, block_length)
        .astype(np.int64)
        @ weights
    )

    last_seen = np.zeros(2**block_length, dtype=np.int64)
    for position in range(q):
        last_seen[values[position]] = position + 1

    total = 0.0
    for position in range(q, total_blocks):
        value = values[position]
        total += np.log2(position + 1 - last_seen[value])
        last_seen[value] = position + 1
    fn = total / k

    # Finite-size correction of the reference implementation.
    c = 0.7 - 0.8 / block_length + (4.0 + 32.0 / block_length) * k ** (
        -3.0 / block_length
    ) / 15.0
    sigma = c * np.sqrt(variance / k)
    statistic = abs(fn - expected) / (np.sqrt(2.0) * sigma)
    p_value = normalized_erfc(abs(fn - expected) / sigma)
    return TestOutcome(
        test="Universal",
        p_value=p_value,
        statistic=float(statistic),
        details={"L": block_length, "Q": q, "K": k, "fn": fn},
    )
