"""Exact category probabilities for the overlapping-template test.

SP 800-22 hardcodes the six category probabilities of the overlapping
test for its reference parameterisation (m = 9, M = 1032).  This module
computes them *exactly* for any (m, M) by dynamic programming over the
number of overlapping all-ones-template occurrences in a uniform random
block, enabling arbitrary parameterisations — and serving as an
independent check of the specification's constants (see
``tests/test_nist_overlapping_pi.py``).

The DP state is (position, length of the current trailing run of ones
capped at m, occurrences so far capped at K+1): appending a 1 to a
trailing run of length >= m-1 produces one new overlapping occurrence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["overlapping_occurrence_probabilities"]


def overlapping_occurrence_probabilities(
    template_length: int, block_length: int, max_category: int = 5
) -> np.ndarray:
    """P(exactly u overlapping all-ones occurrences), u = 0..max_category.

    The final entry aggregates ``>= max_category`` occurrences, matching
    the test's category layout.

    Args:
        template_length: m, the run of ones searched for.
        block_length: M, the block size scanned.
        max_category: K, the index of the aggregated last category.

    Returns:
        Array of ``max_category + 1`` probabilities summing to 1.
    """
    if template_length < 1:
        raise ValueError("template_length must be >= 1")
    if block_length < 1:
        raise ValueError("block_length must be >= 1")
    if max_category < 1:
        raise ValueError("max_category must be >= 1")

    m = template_length
    categories = max_category + 1
    # state[run, occurrences]: probability mass; run in 0..m-1 is the
    # length of the trailing ones-run (m-1 means "one more 1 scores");
    # occurrences are capped at max_category (the aggregate bucket).
    state = np.zeros((m, categories))
    state[0, 0] = 1.0
    for _ in range(block_length):
        next_state = np.zeros_like(state)
        # Appending a 0 resets the run.
        next_state[0, :] += 0.5 * state.sum(axis=0)
        # Appending a 1 extends the run...
        for run in range(m - 1):
            next_state[run + 1, :] += 0.5 * state[run, :]
        # ...and a run already at m-1 stays at m-1 (overlap!) and scores.
        scored = 0.5 * state[m - 1, :]
        next_state[m - 1, 1:] += scored[:-1]
        next_state[m - 1, -1] += scored[-1]  # aggregate bucket absorbs
        state = next_state
    probabilities = state.sum(axis=0)
    total = probabilities.sum()
    if not np.isclose(total, 1.0, atol=1e-9):
        raise AssertionError(f"probabilities sum to {total}, expected 1")
    return probabilities / total
