"""Setup shim so `python setup.py develop` works on machines without the
`wheel` package (offline environments); `pip install -e .` is preferred."""

from setuptools import setup

setup()
