"""E1 — Table I: NIST battery over Case-1 PUF outputs (97 x 96 bits)."""

from conftest import run_once

from repro.experiments.nist_tables import format_result, run_nist_experiment


def test_bench_table1_nist_case1(benchmark, paper_dataset, save_artifact):
    result = run_once(
        benchmark,
        run_nist_experiment,
        dataset=paper_dataset,
        method="case1",
        distilled=True,
    )
    save_artifact("table1_nist_case1", format_result(result))

    report = result.report
    assert result.streams.shape == (97, 96)
    # Paper: distilled Case-1 outputs pass every applicable NIST test.
    assert result.passed, [row.label for row in report.failed_rows]
    # Paper quote: minimum pass rate approximately 93 of 97.
    for row in report.rows:
        assert row.passing >= 93
