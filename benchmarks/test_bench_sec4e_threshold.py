"""E9 — Sec. IV.E: reliable bits vs R_th on the in-house boards.

Paper: 9 Virtex-5 boards, 64 ROs x up to 13 inverters -> 32 bits;
traditional drops 32 -> 13 as R_th goes 0 -> 3 while the configurable PUF
still delivers (essentially) all 32.
"""

import numpy as np
from conftest import run_once

from repro.experiments.sec4e_threshold import (
    format_result,
    run_threshold_study,
)


def test_bench_sec4e_threshold(benchmark, save_artifact):
    result = run_once(benchmark, run_threshold_study)
    save_artifact("sec4e_threshold", format_result(result))

    assert result.total_bits == 32
    assert result.board_count == 9

    grid = result.thresholds_units
    at = lambda t: int(np.argmin(np.abs(grid - t)))  # noqa: E731

    # R_th = 0: both schemes deliver all 32 bits.
    assert result.traditional[at(0.0)] == 32.0
    assert result.configurable[at(0.0)] == 32.0
    # R_th = 3: traditional drops to about 13, configurable keeps ~32.
    assert abs(result.traditional[at(3.0)] - 13.0) < 3.0
    assert result.configurable[at(3.0)] > 29.0
    # Monotone decay for both.
    assert np.all(np.diff(result.traditional) <= 1e-9)
    assert np.all(np.diff(result.configurable) <= 1e-9)
