"""A1 — ablation: raw PUF bits fail NIST, distilled bits pass (Sec. IV.A)."""

from conftest import run_once

from repro.experiments.ablations import (
    format_distiller_ablation,
    run_distiller_ablation,
)


def test_bench_ablation_distiller(benchmark, paper_dataset, save_artifact):
    result = run_once(benchmark, run_distiller_ablation, dataset=paper_dataset)
    save_artifact("ablation_distiller", format_distiller_ablation(result))

    # Paper: "the NIST test fails on the bit-streams generated from the raw
    # data ... the new bit-streams successfully pass all the NIST tests".
    assert not result.raw_passed
    assert result.distilled_passed
    # The raw failure is drastic, not marginal (systematic correlation).
    assert result.raw_min_proportion < 0.5
    assert "Runs" in " ".join(result.raw_failed_tests)
