"""E4 — Table III: HD distribution of Case-1 best configurations.

Paper reference (3104 15-bit vectors): HD 6 and 8 carry the majority
(32.8% + 38.3%), every pairwise HD is even, and duplicates are absent
(< 0.01% of pairs in our reproduction — displays as ~0 in the paper's
convention).
"""

import numpy as np
from conftest import run_once

from repro.experiments.config_tables import format_result, run_config_study

PAPER_PERCENT = {0: 0.0, 2: 0.822, 4: 9.80, 6: 32.8, 8: 38.3, 10: 16.1, 12: 2.15, 14: 0.061}


def test_bench_table3_configs_case1(benchmark, paper_dataset, save_artifact):
    result = run_once(
        benchmark, run_config_study, dataset=paper_dataset, method="case1"
    )
    save_artifact("table3_configs_case1", format_result(result))

    assert result.vectors.shape == (3104, 15)
    assert result.odd_hd_pairs == 0  # all-even HDs, as in the paper's table
    percentages = result.hd_percentages
    # The distribution shape must track the paper's within a few points.
    for distance, paper_value in PAPER_PERCENT.items():
        assert abs(percentages[distance] - paper_value) < 5.0, (
            distance,
            percentages[distance],
            paper_value,
        )
    # Mode at HD 6 or 8, as in the paper.
    assert int(np.argmax(percentages)) in (6, 8)
    # Duplicates essentially absent.
    assert percentages[0] < 0.05
    # n/2 conjecture: about half the units selected.
    assert 0.35 < result.mean_selected_fraction < 0.7
