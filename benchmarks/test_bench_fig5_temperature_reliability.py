"""E7 — Sec. IV.D temperature sweep: only the traditional PUF flips."""

import numpy as np
from conftest import run_once

from repro.experiments.fig4_reliability import (
    format_result,
    run_temperature_reliability,
)


def test_bench_fig5_temperature_reliability(
    benchmark, paper_dataset, save_artifact
):
    result = run_once(
        benchmark, run_temperature_reliability, dataset=paper_dataset
    )
    save_artifact("fig5_temperature_reliability", format_result(result))

    # Paper: "Only the traditional RO PUF has bit flips" under temperature.
    for subplot in result.subplots:
        assert np.all(subplot.configurable_flip_percent == 0.0), subplot
        assert subplot.one_of_8_flip_percent == 0.0
    total_traditional = sum(
        s.traditional_flip_percent for s in result.subplots
    )
    assert total_traditional > 0.0
