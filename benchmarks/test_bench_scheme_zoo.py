"""A6 — scheme zoo: yield vs stability of five schemes on equal hardware.

Extends Table V / Fig. 4 with the cooperative (ordering) PUF of the
paper's ref [2] and the offset-aware selector:

* utilisation: cooperative (1 bit/ring) > configurable/traditional
  (0.5) > 1-out-of-8 (0.125);
* stability: 1-out-of-8 = configurable (0%) < traditional < cooperative;
* the offset-aware Case-2 variant recovers extra margin the paper's
  formulation leaves on the table.
"""

from conftest import run_once

from repro.experiments.extensions import format_scheme_zoo, run_scheme_zoo


def test_bench_scheme_zoo(benchmark, paper_dataset, save_artifact):
    zoo = run_once(benchmark, run_scheme_zoo, dataset=paper_dataset)
    save_artifact("scheme_zoo", format_scheme_zoo(zoo))

    per_ring = {row.scheme: row.bits_per_ring for row in zoo.rows}
    flips = {row.scheme: row.flip_percent for row in zoo.rows}

    assert per_ring["cooperative"] == 1.0
    assert per_ring["case1"] == per_ring["case2"] == 0.5
    assert per_ring["1-out-of-8"] == 0.125

    assert flips["case2"] <= flips["case1"] <= flips["traditional"]
    assert flips["1-out-of-8"] == 0.0
    assert flips["cooperative"] > flips["traditional"]

    assert zoo.offset_margin_gain_percent >= 0.0
