"""A10 — multi-corner enrollment removes the enrollment-corner lottery.

Fig. 4's observation 4: the best single enrollment corner is mid-range —
but you only know which corner was best after testing them all.
Multi-corner enrollment (maximise the worst-corner margin) matches the
best single corner without the hunt.
"""

from conftest import run_once

from repro.experiments.extensions import (
    format_multicorner_study,
    run_multicorner_study,
)


def test_bench_multicorner(benchmark, paper_dataset, save_artifact):
    study = run_once(benchmark, run_multicorner_study, dataset=paper_dataset)
    save_artifact("multicorner_enrollment", format_multicorner_study(study))

    # Single-corner enrollment at the wrong corner visibly flips at n = 3.
    assert study.single_corner_worst_percent > 1.0
    # Multi-corner enrollment is at least as good as the best single corner
    # (small slack: the greedy is not exactly optimal).
    assert (
        study.multicorner_percent
        <= study.single_corner_best_percent + 0.5
    )
    # And far better than the worst corner.
    assert study.multicorner_percent < study.single_corner_worst_percent / 2
