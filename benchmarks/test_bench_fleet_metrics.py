"""B-fleet — out-of-core fleet analytics: throughput and memory ceiling.

The ROADMAP-item-2 claim is that population metrics over 10^5 devices run
in bounded memory: peak RSS tracks the shard size, not the fleet size.
Each measured run happens in a *subprocess* so ``ru_maxrss`` reflects that
run alone — the pytest process has already paged in the whole test
session and its high-water mark would swamp the signal.

Two pins, recorded in ``results/BENCH_fleet.json`` for the CI regression
gate (``ropuf bench compare --metric memory``):

* an absolute peak-RSS ceiling for the full 10^5-device fleet, and
* a growth bound — 4x the devices must cost well under 4x the memory
  (the dense pairwise-HD approach would scale quadratically).
"""

import json
import subprocess
import sys
from pathlib import Path

RO_COUNT = 128
SHARD_DEVICES = 4096
FULL_DEVICES = 100_000
QUARTER_DEVICES = 25_000

#: Generous absolute ceiling for the full run (interpreter + numpy alone
#: cost ~70 MB; the fleet's working set is one shard per worker).
PEAK_RSS_CEILING_MB = 512.0

#: 4x the devices may cost at most this factor in peak RSS.
RSS_GROWTH_LIMIT = 2.0

_RUNNER = """\
import json
import resource
import sys
import time

from repro.datasets.fleet import FleetSpec
from repro.pipeline.fleet import run_fleet_analysis

devices, ro_count, shard_devices = map(int, sys.argv[1:4])
spec = FleetSpec(
    devices=devices, ro_count=ro_count, shard_devices=shard_devices
)
start = time.perf_counter()
summary = run_fleet_analysis(spec)
elapsed = time.perf_counter() - start
assert summary["complete"], summary["shards"]
ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(
    json.dumps(
        {
            "elapsed_seconds": elapsed,
            "peak_rss_mb": ru_maxrss / 1024.0,  # linux: ru_maxrss in KiB
            "uniqueness_percent": summary["uniqueness"][
                "uniqueness_percent"
            ],
            "reliability_flip_percent": summary["reliability"][
                "mean_flip_percent"
            ],
        }
    )
)
"""


def _measure(devices: int) -> dict:
    """Run one fleet analysis in a fresh interpreter; return its numbers."""
    src = Path(__file__).resolve().parent.parent / "src"
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _RUNNER,
            str(devices),
            str(RO_COUNT),
            str(SHARD_DEVICES),
        ],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
    )
    return json.loads(proc.stdout)


def test_bench_fleet_metrics(save_artifact, save_bench_json):
    quarter = _measure(QUARTER_DEVICES)
    full = _measure(FULL_DEVICES)

    devices_per_second = FULL_DEVICES / full["elapsed_seconds"]
    growth = full["peak_rss_mb"] / quarter["peak_rss_mb"]

    save_bench_json(
        "fleet",
        {
            "fleet": {
                "problem": {
                    "devices": FULL_DEVICES,
                    "ro_count": RO_COUNT,
                    "shard_devices": SHARD_DEVICES,
                },
                "elapsed_seconds": full["elapsed_seconds"],
                "devices_per_second": devices_per_second,
                "peak_rss_mb": full["peak_rss_mb"],
                "quarter_peak_rss_mb": quarter["peak_rss_mb"],
            },
        },
    )
    save_artifact(
        "fleet_metrics",
        "\n".join(
            [
                f"fleet: {FULL_DEVICES} devices x {RO_COUNT} ROs "
                f"(shards of {SHARD_DEVICES})",
                f"  wall time        {full['elapsed_seconds']:8.2f} s "
                f"({devices_per_second:,.0f} devices/s)",
                f"  peak RSS         {full['peak_rss_mb']:8.1f} MB "
                f"(ceiling {PEAK_RSS_CEILING_MB:.0f} MB)",
                f"  peak RSS @ 25k   {quarter['peak_rss_mb']:8.1f} MB "
                f"(growth x{growth:.2f}, limit x{RSS_GROWTH_LIMIT:.1f})",
                f"  uniqueness       {full['uniqueness_percent']:8.3f} %",
                f"  flip rate        "
                f"{full['reliability_flip_percent']:8.3f} %",
            ]
        ),
    )

    # Sanity: a healthy 10^5-device population sits at ~50% uniqueness.
    assert 49.0 < full["uniqueness_percent"] < 51.0

    # The memory pins: absolute ceiling, and out-of-core growth bound —
    # 4x the devices must not cost anywhere near 4x the memory.
    assert full["peak_rss_mb"] < PEAK_RSS_CEILING_MB, (
        f"peak RSS {full['peak_rss_mb']:.1f} MB over the "
        f"{PEAK_RSS_CEILING_MB:.0f} MB ceiling"
    )
    assert growth < RSS_GROWTH_LIMIT, (
        f"peak RSS grew x{growth:.2f} from {QUARTER_DEVICES} to "
        f"{FULL_DEVICES} devices (limit x{RSS_GROWTH_LIMIT:.1f}) — "
        "memory is tracking fleet size, not shard size"
    )
