"""A4 — attack ablation: the equal-selected-count constraint's security.

Paper (Sec. III.D): equal counts exist "for security concern because the
one that uses fewer inverters will most likely be faster, making it easier
for an attacker to guess the bit value".  We attack the stored
configurations: equal-count schemes leak nothing; the unconstrained
variant hands the attacker the bit.  The CRP modeling attack on the
Maiti-Schaumont (challenge-configurable) PUF demonstrates the related-work
vulnerability [16] our fixed-configuration scheme avoids.
"""

from conftest import run_once

from repro.experiments.extensions import (
    format_leakage_study,
    run_leakage_study,
)


def test_bench_ablation_attacks(benchmark, paper_dataset, save_artifact):
    study = run_once(benchmark, run_leakage_study, dataset=paper_dataset)
    save_artifact("ablation_attacks", format_leakage_study(study))

    by_scheme = {result.scheme: result for result in study.results}
    # Equal-count schemes: at most marginal advantage over chance.
    assert by_scheme["case1"].advantage < 0.1
    assert by_scheme["case2"].advantage < 0.1
    # Unconstrained selection: the configuration IS the bit.
    assert by_scheme["unconstrained"].accuracy > 0.98
    # Reconfigurable-style CRP interface: fully modelable.
    assert study.model_attack.accuracy > 0.9
    assert study.model_attack.chance < 0.7
