"""E-enroll — loop vs vectorized enrollment-engine speedup.

Two workloads, mirroring the two enrollment halves:

* a 128-pair board (9-stage rings) enrolled through the batch selectors
  (``BoardROPUF.enroll``) against the preserved per-pair loop
  (``enroll_loop_reference``);
* a 64-ring chip enrolled through the batch leave-one-out measurement
  path (``ChipROPUF.enroll_batch``) against the per-ring legacy loop
  (``chip_enroll_loop_reference``), noiseless so both paths must agree
  bit-for-bit.

The equivalence tests pin byte-identity only (cheap; the CI smoke job
selects them with ``-k equivalence``); the timing test additionally
requires a 5x speedup on both workloads and records medians, speedups
and problem sizes in ``results/BENCH_enroll.json``.
"""

import time

import numpy as np

from repro.core.batch import chip_enroll_loop_reference, enroll_loop_reference
from repro.core.measurement import DelayMeasurer
from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF, ChipROPUF
from repro.silicon.fabrication import FabricationProcess
from repro.variation.environment import NOMINAL_OPERATING_POINT
from repro.variation.noise import NoiselessMeasurement

PAIR_COUNT = 128
STAGE_COUNT = 9
CHIP_RING_COUNT = 64
REQUIRED_SPEEDUP = 5.0


def _make_board_puf():
    rng = np.random.default_rng(2024)
    ring_count = 2 * PAIR_COUNT
    n_units = ring_count * STAGE_COUNT
    base = rng.normal(1.0, 0.02, n_units)
    sensitivity = rng.normal(0.05, 0.01, n_units)

    def provider(op):
        return base * (1.0 + sensitivity * (1.20 - op.voltage))

    allocation = RingAllocation(stage_count=STAGE_COUNT, ring_count=ring_count)
    return BoardROPUF(
        delay_provider=provider,
        allocation=allocation,
        method="case1",
        require_odd=True,
    )


def _make_chip_puf():
    chip = FabricationProcess().fabricate(
        CHIP_RING_COUNT * STAGE_COUNT + 24,
        np.random.default_rng(7),
        name="enroll-bench",
    )
    measurer = DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)
    allocation = RingAllocation(stage_count=STAGE_COUNT, ring_count=CHIP_RING_COUNT)
    return ChipROPUF(
        chip=chip,
        allocation=allocation,
        method="case1",
        require_odd=True,
        measurer=measurer,
    )


def _assert_same_enrollment(vectorized, loop):
    assert np.array_equal(vectorized.bits, loop.bits)
    assert np.array_equal(vectorized.margins, loop.margins)
    assert vectorized.selections == loop.selections


def _median_seconds(func, rounds=5):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_board_enroll_equivalence():
    """Batch board enrollment == the preserved per-pair loop, bit for bit."""
    puf = _make_board_puf()
    _assert_same_enrollment(
        puf.enroll(), enroll_loop_reference(puf, NOMINAL_OPERATING_POINT)
    )


def test_chip_enroll_equivalence():
    """Noiseless batch chip enrollment == the legacy per-ring loop."""
    puf = _make_chip_puf()
    _assert_same_enrollment(
        puf.enroll_batch(),
        chip_enroll_loop_reference(puf, NOMINAL_OPERATING_POINT),
    )


def test_bench_enroll_engine(benchmark, save_artifact, save_bench_json):
    board = _make_board_puf()
    chip = _make_chip_puf()
    op = NOMINAL_OPERATING_POINT

    # Board half: one batch-selector pass vs 128 scalar selector calls.
    board_loop_seconds = _median_seconds(lambda: enroll_loop_reference(board, op))
    board_enrollment = benchmark(board.enroll, op)
    board_vec_seconds = benchmark.stats.stats.median
    board_speedup = board_loop_seconds / board_vec_seconds
    _assert_same_enrollment(board_enrollment, enroll_loop_reference(board, op))

    # Chip half: one leave-one-out delay tensor vs per-ring scalar chains.
    chip_loop_seconds = _median_seconds(lambda: chip_enroll_loop_reference(chip, op))
    chip_vec_seconds = _median_seconds(lambda: chip.enroll_batch(op))
    chip_speedup = chip_loop_seconds / chip_vec_seconds
    _assert_same_enrollment(chip.enroll_batch(op), chip_enroll_loop_reference(chip, op))

    save_artifact(
        "enroll_engine",
        "\n".join(
            [
                "Batch enrollment engine",
                f"board ({PAIR_COUNT} pairs, n={STAGE_COUNT}):",
                f"  per-pair loop:   {board_loop_seconds * 1e3:9.3f} ms",
                f"  batch selector:  {board_vec_seconds * 1e3:9.3f} ms",
                f"  speedup:         {board_speedup:9.1f}x",
                f"chip ({CHIP_RING_COUNT} rings, n={STAGE_COUNT}):",
                f"  per-ring loop:   {chip_loop_seconds * 1e3:9.3f} ms",
                f"  batch LOO:       {chip_vec_seconds * 1e3:9.3f} ms",
                f"  speedup:         {chip_speedup:9.1f}x",
                f"required:          {REQUIRED_SPEEDUP:9.1f}x on both",
            ]
        ),
    )
    save_bench_json(
        "enroll",
        {
            "engine": "enroll_batch",
            "board": {
                "problem": {
                    "pair_count": PAIR_COUNT,
                    "stage_count": STAGE_COUNT,
                },
                "reference_median_seconds": board_loop_seconds,
                "vectorized_median_seconds": board_vec_seconds,
                "speedup_vs_reference": board_speedup,
            },
            "chip": {
                "problem": {
                    "ring_count": CHIP_RING_COUNT,
                    "stage_count": STAGE_COUNT,
                },
                "reference_median_seconds": chip_loop_seconds,
                "vectorized_median_seconds": chip_vec_seconds,
                "speedup_vs_reference": chip_speedup,
            },
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert board_speedup >= REQUIRED_SPEEDUP, (
        f"batch board enrollment only {board_speedup:.1f}x faster"
    )
    assert chip_speedup >= REQUIRED_SPEEDUP, (
        f"batch chip enrollment only {chip_speedup:.1f}x faster"
    )
