"""E10 — Sec. III.D conjecture: optimal configurations select about n/2.

The paper argues that once systematic variation is filtered, the optimal
configuration includes roughly half the available inverters ("7 is about
one half of 15").
"""

import numpy as np
from conftest import run_once

from repro.experiments.config_tables import run_config_study


def test_bench_selected_fraction(benchmark, paper_dataset, save_artifact):
    result = run_once(
        benchmark,
        run_config_study,
        dataset=paper_dataset,
        method="case1",
        stage_count=15,
    )
    counts = result.selected_counts
    histogram = np.bincount(counts, minlength=16)
    lines = ["selected-count distribution over 3104 Case-1 pairs (n=15):"]
    for k, c in enumerate(histogram):
        if c:
            lines.append(f"  {k:2d} selected: {c:5d} ({100.0 * c / len(counts):.1f}%)")
    lines.append(f"mean fraction selected: {result.mean_selected_fraction:.3f}")
    save_artifact("selected_fraction", "\n".join(lines))

    # Conjecture: about n/2 — mean within [0.4, 0.7] of the units, and the
    # mode at 7 or 9 of 15 (odd counts only, free-running constraint).
    assert 0.4 < result.mean_selected_fraction < 0.7
    assert int(np.argmax(histogram)) in (7, 9)
    # require_odd means every count is odd.
    assert np.all(counts % 2 == 1)
