"""A2 — ablation: achieved margins per selection scheme on identical silicon.

Expected ordering of mean |margin|: case2 >= case1 > maiti-schaumont and
traditional; and the bit-sign identity between the three paper schemes.
"""

from conftest import run_once

from repro.experiments.ablations import (
    format_selector_ablation,
    run_selector_ablation,
)


def test_bench_ablation_selectors(benchmark, paper_dataset, save_artifact):
    result = run_once(
        benchmark, run_selector_ablation, dataset=paper_dataset, max_boards=80
    )
    save_artifact("ablation_selectors", format_selector_ablation(result))

    margins = result.mean_abs_margin
    assert margins["case2"] >= margins["case1"]
    assert margins["case1"] > margins["traditional"] * 1.3
    assert margins["case1"] > margins["maiti_schaumont"]
    # Worst-case margin: the configurable schemes lift the floor that the
    # traditional scheme leaves at (essentially) zero.
    assert result.min_abs_margin["case1"] > result.min_abs_margin["traditional"]
    # Bit-sign identity between case1/case2/traditional.
    assert result.bit_disagreements == 0
