"""Benchmark fixtures: artifact saving and the shared paper-scale dataset.

Every benchmark regenerates one of the paper's tables or figures at full
scale, times it with pytest-benchmark, renders the paper-style output into
``benchmarks/results/<name>.txt``, and asserts the qualitative claims the
paper makes about it (who wins, by roughly what factor).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_artifact(artifact_dir):
    """Write a rendered experiment output next to the benchmarks."""

    def _save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        # Also echo to stdout so `pytest -s` shows the tables inline.
        print(f"\n[artifact: {path}]")
        print(text)

    return _save


@pytest.fixture()
def save_bench_json(artifact_dir):
    """Write machine-readable benchmark results as ``BENCH_<name>.json``.

    The engine benchmarks record median wall times, speedups over the
    preserved loop references, and problem sizes here so the perf
    trajectory is tracked across PRs (diffable, stable key order).

    Every artifact is stamped with the versioned layout tag (``"schema"``)
    that ``ropuf bench compare`` requires, so saved artifacts feed straight
    into the CI regression gate against ``benchmarks/baselines/``.
    """
    from repro.obs import BENCH_SCHEMA

    def _save(name: str, payload: dict) -> Path:
        payload = {"schema": BENCH_SCHEMA, **payload}
        path = artifact_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\n[bench json: {path}]")
        return path

    return _save


@pytest.fixture(scope="session")
def paper_dataset():
    """The full 194+5-board synthetic VT-like dataset (cached per session)."""
    from repro.datasets.vtlike import default_vt_dataset

    return default_vt_dataset()


def run_once(benchmark, func, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
