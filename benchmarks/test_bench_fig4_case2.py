"""E6b — Fig. 4 companion: Case-2's extra freedom buys extra reliability.

Paper (Sec. IV.D): "Similar observations hold for Case-2 ... The only
noticeable difference is that because of this flexibility, the Case-2
configurable PUF becomes more reliable."
"""

from conftest import run_once

from repro.experiments.fig4_reliability import (
    format_result,
    run_voltage_reliability,
)


def test_bench_fig4_case2(benchmark, paper_dataset, save_artifact):
    case2 = run_once(
        benchmark, run_voltage_reliability, dataset=paper_dataset, method="case2"
    )
    save_artifact("fig4_voltage_reliability_case2", format_result(case2))

    case1 = run_voltage_reliability(paper_dataset, method="case1")
    for n in (3, 5, 7, 9):
        assert (
            case2.mean_configurable_flips(n)
            <= case1.mean_configurable_flips(n) + 1e-9
        ), n
    # Case-2 still collapses to 0% from n = 7.
    assert case2.mean_configurable_flips(7) == 0.0
    assert case2.mean_configurable_flips(9) == 0.0
