"""E-faults — a no-op FaultPlan must be (near) free on the hot paths.

Fault injection wraps the measurement stack at the noise-model seam
(:class:`repro.faults.plan.FaultInjectingNoise`), and a plan with no
effective models delegates wholesale to the wrapped noise model without
touching the fault RNG.  This benchmark pins that guarantee on the two
batch hot paths: a board response sweep and a chip enrollment sweep, each
run with a no-op plan attached must cost within 2% of the bare run.

The two arms are interleaved and compared min-of-rounds, so slow outliers
from scheduler noise hurt neither side.
"""

import time

import numpy as np

from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF, ChipROPUF
from repro.faults import FaultPlan
from repro.silicon.fabrication import FabricationProcess
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from repro.variation.noise import GaussianNoise

PAIR_COUNT = 128
STAGE_COUNT = 9
CHIP_UNITS = 512
CHIP_STAGES = 8
ROUNDS = 9
MAX_OVERHEAD = 0.02
SWEEP_OPS = [
    NOMINAL_OPERATING_POINT,
    OperatingPoint(voltage=1.08, temperature=45.0),
    OperatingPoint(voltage=1.32, temperature=5.0),
]


def _make_board_puf():
    rng = np.random.default_rng(2024)
    ring_count = 2 * PAIR_COUNT
    n_units = ring_count * STAGE_COUNT
    base = rng.normal(1.0, 0.02, n_units)
    sensitivity = rng.normal(0.05, 0.01, n_units)

    def provider(op):
        return base * (1.0 + sensitivity * (1.20 - op.voltage))

    allocation = RingAllocation(stage_count=STAGE_COUNT, ring_count=ring_count)
    return BoardROPUF(
        delay_provider=provider,
        allocation=allocation,
        method="case1",
        require_odd=True,
        response_noise=GaussianNoise(relative_sigma=1e-4),
        rng=np.random.default_rng(7),
    )


def _timed(func):
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def _interleaved_overhead(bare, wrapped):
    """min-of-rounds overhead fraction of ``wrapped`` over ``bare``."""
    bare()
    wrapped()
    bare_times = []
    wrapped_times = []
    for _ in range(ROUNDS):
        bare_times.append(_timed(bare))
        wrapped_times.append(_timed(wrapped))
    bare_seconds = min(bare_times)
    wrapped_seconds = min(wrapped_times)
    return bare_seconds, wrapped_seconds, wrapped_seconds / bare_seconds - 1.0


def _report(save_artifact, save_bench_json, name, title, problem, numbers):
    bare_seconds, wrapped_seconds, overhead = numbers
    save_artifact(
        name,
        "\n".join(
            [
                title,
                f"rounds: {ROUNDS} (min-of-rounds, interleaved)",
                f"  bare (no plan):      {bare_seconds * 1e3:9.3f} ms",
                f"  no-op FaultPlan:     {wrapped_seconds * 1e3:9.3f} ms",
                f"  overhead:            {overhead:+9.2%}",
                f"  allowed:             {MAX_OVERHEAD:9.2%}",
            ]
        ),
    )
    save_bench_json(
        name,
        {
            "engine": name,
            "problem": problem,
            "bare_min_seconds": bare_seconds,
            "noop_plan_min_seconds": wrapped_seconds,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD,
        },
    )
    assert overhead <= MAX_OVERHEAD, (
        f"a no-op FaultPlan costs {overhead:+.2%} over the bare path "
        f"(allowed {MAX_OVERHEAD:.0%}) — the no-op plan must delegate "
        "wholesale to the wrapped noise model"
    )


def test_bench_noop_plan_response_sweep(save_artifact, save_bench_json):
    puf = _make_board_puf()
    plan = FaultPlan(seed=0, models=[])
    assert plan.is_noop
    faulted = plan.attach_to_board(puf)
    enrollment = puf.enroll(NOMINAL_OPERATING_POINT)

    numbers = _interleaved_overhead(
        lambda: puf.response_sweep(SWEEP_OPS, enrollment),
        lambda: faulted.response_sweep(SWEEP_OPS, enrollment),
    )
    _report(
        save_artifact,
        save_bench_json,
        "fault_overhead_response",
        "No-op FaultPlan overhead (board response sweep)",
        {
            "pair_count": PAIR_COUNT,
            "stage_count": STAGE_COUNT,
            "sweep_ops": len(SWEEP_OPS),
            "rounds": ROUNDS,
        },
        numbers,
    )


def test_bench_noop_plan_enroll_sweep(save_artifact, save_bench_json):
    chip = FabricationProcess().fabricate(
        CHIP_UNITS, np.random.default_rng(99), name="benchchip"
    )
    puf = ChipROPUF.deploy(chip, stage_count=CHIP_STAGES)
    plan = FaultPlan(seed=0, models=[])
    assert plan.is_noop
    faulted = plan.attach_to_chip(puf)

    numbers = _interleaved_overhead(
        lambda: puf.enroll_sweep(SWEEP_OPS),
        lambda: faulted.enroll_sweep(SWEEP_OPS),
    )
    _report(
        save_artifact,
        save_bench_json,
        "fault_overhead_enroll",
        "No-op FaultPlan overhead (chip enrollment sweep)",
        {
            "chip_units": CHIP_UNITS,
            "stage_count": CHIP_STAGES,
            "sweep_ops": len(SWEEP_OPS),
            "rounds": ROUNDS,
        },
        numbers,
    )
