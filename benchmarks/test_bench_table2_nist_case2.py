"""E2 — Table II: NIST battery over Case-2 PUF outputs (97 x 96 bits)."""

from conftest import run_once

from repro.experiments.nist_tables import format_result, run_nist_experiment


def test_bench_table2_nist_case2(benchmark, paper_dataset, save_artifact):
    result = run_once(
        benchmark,
        run_nist_experiment,
        dataset=paper_dataset,
        method="case2",
        distilled=True,
    )
    save_artifact("table2_nist_case2", format_result(result))

    assert result.streams.shape == (97, 96)
    assert result.passed, [row.label for row in result.report.failed_rows]
    for row in result.report.rows:
        assert row.passing >= 93
