"""A8 — margin scaling: configurable ~ n, traditional ~ sqrt(n).

The quantitative law behind Fig. 4's "reliability increases with n":
the configurable margin sums ~n/2 positive |delta| terms (linear growth),
the traditional margin is a zero-mean random walk (sqrt growth), so the
configurable advantage opens as sqrt(n).
"""

import numpy as np
from conftest import run_once

from repro.experiments.extensions import (
    format_margin_scaling,
    run_margin_scaling_study,
)


def test_bench_margin_scaling(benchmark, save_artifact):
    study = run_once(benchmark, run_margin_scaling_study)
    save_artifact("margin_scaling", format_margin_scaling(study))

    n = np.array(study.stage_counts, dtype=float)

    # Fit growth exponents on log-log axes.
    config_slope = np.polyfit(np.log(n), np.log(study.configurable), 1)[0]
    traditional_slope = np.polyfit(np.log(n), np.log(study.traditional), 1)[0]
    assert 0.85 < config_slope < 1.15  # ~linear
    assert 0.35 < traditional_slope < 0.65  # ~sqrt

    # The ratio keeps opening with n.
    ratios = study.ratio
    assert ratios[-1] > 2.0 * ratios[0]
    assert np.all(np.diff(ratios) > -0.1)  # monotone up to sampling noise
