"""E-obs — the disabled observability layer must be (near) free.

The instrumented hot paths — scalar selectors, batch engines, the cache —
call :func:`repro.obs.span` / :func:`repro.obs.counter_add` unconditionally
and rely on the disabled path being one module-flag check.  This benchmark
pins that guarantee: enrolling a 128-pair board through the per-pair loop
(128 scalar selector calls, each hitting a counter) with the real disabled
obs functions must cost within 2% of the same run with every obs call
monkeypatched to a bare no-op stub (the "never instrumented" proxy).

The two arms are interleaved and compared min-of-rounds, so slow outliers
from scheduler noise hurt neither side.
"""

import time

import numpy as np

import repro.obs
from repro import obs
from repro.core.batch import enroll_loop_reference
from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF
from repro.variation.environment import NOMINAL_OPERATING_POINT

PAIR_COUNT = 128
STAGE_COUNT = 9
ROUNDS = 9
MAX_OVERHEAD = 0.02


def _make_board_puf():
    rng = np.random.default_rng(2024)
    ring_count = 2 * PAIR_COUNT
    n_units = ring_count * STAGE_COUNT
    base = rng.normal(1.0, 0.02, n_units)
    sensitivity = rng.normal(0.05, 0.01, n_units)

    def provider(op):
        return base * (1.0 + sensitivity * (1.20 - op.voltage))

    allocation = RingAllocation(stage_count=STAGE_COUNT, ring_count=ring_count)
    return BoardROPUF(
        delay_provider=provider,
        allocation=allocation,
        method="case1",
        require_odd=True,
    )


class _StubSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set_attr(self, key, value):
        pass


_STUB_SPAN = _StubSpan()


def _stub_obs(monkeypatch_ctx):
    """Replace every obs entry point the engines call with a bare no-op."""
    monkeypatch_ctx.setattr(repro.obs, "span", lambda *a, **k: _STUB_SPAN)
    monkeypatch_ctx.setattr(repro.obs, "counter_add", lambda *a, **k: None)
    monkeypatch_ctx.setattr(repro.obs, "gauge_set", lambda *a, **k: None)
    monkeypatch_ctx.setattr(
        repro.obs, "histogram_observe", lambda *a, **k: None
    )
    monkeypatch_ctx.setattr(repro.obs, "metrics_enabled", lambda: False)


def _timed(func):
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def test_bench_obs_disabled_overhead(monkeypatch, save_artifact, save_bench_json):
    assert not obs.tracing_enabled() and not obs.metrics_enabled()
    puf = _make_board_puf()
    op = NOMINAL_OPERATING_POINT

    def workload():
        enroll_loop_reference(puf, op)

    # warm both arms (JIT-free, but caches/allocators settle)
    workload()
    with monkeypatch.context() as ctx:
        _stub_obs(ctx)
        workload()

    real_disabled = []
    stubbed = []
    for _ in range(ROUNDS):
        real_disabled.append(_timed(workload))
        with monkeypatch.context() as ctx:
            _stub_obs(ctx)
            stubbed.append(_timed(workload))

    real_seconds = min(real_disabled)
    stub_seconds = min(stubbed)
    ratio = real_seconds / stub_seconds
    overhead = ratio - 1.0

    save_artifact(
        "obs_overhead",
        "\n".join(
            [
                "Disabled-observability overhead (board enroll loop)",
                f"pairs: {PAIR_COUNT}, stages: {STAGE_COUNT}, "
                f"rounds: {ROUNDS} (min-of-rounds, interleaved)",
                f"  no-op stubbed obs:   {stub_seconds * 1e3:9.3f} ms",
                f"  real disabled obs:   {real_seconds * 1e3:9.3f} ms",
                f"  overhead:            {overhead:+9.2%}",
                f"  allowed:             {MAX_OVERHEAD:9.2%}",
            ]
        ),
    )
    save_bench_json(
        "obs_overhead",
        {
            "engine": "obs_disabled_overhead",
            "problem": {
                "pair_count": PAIR_COUNT,
                "stage_count": STAGE_COUNT,
                "rounds": ROUNDS,
            },
            "stub_min_seconds": stub_seconds,
            "real_disabled_min_seconds": real_seconds,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD,
        },
    )
    assert overhead <= MAX_OVERHEAD, (
        f"disabled obs costs {overhead:+.2%} over no-op stubs "
        f"(allowed {MAX_OVERHEAD:.0%}) — the disabled path must stay a "
        "single flag check"
    )
