"""A9 — correlated mismatch defeats the distiller.

The regression distiller removes smooth spatial trends; short-range
correlation in the mismatch itself survives it and correlates
neighbouring PUF bits.  Independent mismatch -> distilled battery passes;
correlation length 0.15 of the die -> runs/serial/entropy collapse.
"""

from conftest import run_once

from repro.experiments.extensions import (
    format_correlation_study,
    run_correlation_study,
)


def test_bench_correlation(benchmark, save_artifact):
    study = run_once(benchmark, run_correlation_study)
    save_artifact("correlation_study", format_correlation_study(study))

    by_length = {p.correlation_length: p for p in study.points}
    assert by_length[0.0].passed
    assert not by_length[0.15].passed
    assert not by_length[0.4].passed
    # Degradation is monotone in correlation length.
    proportions = [p.worst_proportion for p in study.points]
    assert proportions == sorted(proportions, reverse=True)
    # The correlation-sensitive tests are exactly the ones that fail.
    assert "Runs" in by_length[0.4].failing_tests
