"""E3 — Fig. 3: inter-chip HD histograms (paper: mean 46.88/46.79 bits)."""

from conftest import run_once

from repro.experiments.fig3_uniqueness import (
    format_result,
    run_uniqueness_experiment,
)


def test_bench_fig3_uniqueness(benchmark, paper_dataset, save_artifact):
    result = run_once(benchmark, run_uniqueness_experiment, dataset=paper_dataset)
    save_artifact("fig3_uniqueness", format_result(result))

    for report, paper_mean in ((result.case1, 46.88), (result.case2, 46.79)):
        assert report.stream_count == 97
        assert report.bit_count == 96
        # Bell centred near half the bits, the paper's headline numbers
        # within a few bits, and no collisions.
        assert abs(report.mean_distance - paper_mean) < 4.0
        assert 3.0 < report.std_distance < 7.0
        assert not report.has_collision
        assert report.min_distance >= 20
