"""B-serve-overload — goodput and admitted-latency under 5x overload.

Drives a deliberately small server (``MAX_INFLIGHT`` admission slots)
with the open-loop harness at several times its sustainable rate, plus a
calibration and a recovery pass around the storm.  Records what overload
protection promises and the ``serve-chaos`` CI job gates:

* ``admitted_p99_seconds`` — the p99 latency of requests the gate
  *admitted* during deep overload.  This is the number admission control
  exists to defend: without the gate it grows with the queue; with it,
  it stays within sight of the quiet-path p99 (gated against
  ``benchmarks/baselines/BENCH_serve_overload.json`` via ``ropuf bench
  compare --metric seconds``).
* ``shed_p99_seconds`` — rejections must stay microsecond-cheap.
* ``goodput_per_second`` — useful work must survive the storm.

Hard assertions (not thresholds): zero wrong verdicts, zero untyped
errors, clean recovery after the storm.
"""

from repro.serve import (
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
    RequestCoalescer,
    run_load,
    run_overload,
)

BOARDS = 2
MAX_INFLIGHT = 4
MAX_BATCH = 32
WINDOW_S = 0.002
OVERLOAD_FACTOR = 5.0
STORM_SECONDS = 4.0
WORKERS = 8
DEADLINE_MS = 250.0


def test_bench_serve_overload(save_artifact, save_bench_json):
    farm = DeviceFarm.from_config(FleetConfig(boards=BOARDS))
    service = AuthService(
        farm,
        CRPStore(None),
        coalescer=RequestCoalescer(max_batch=MAX_BATCH, max_wait_s=WINDOW_S),
    )
    service.enroll_fleet()
    with AuthServer(service, max_inflight=MAX_INFLIGHT).start() as server:
        host, port = server.address
        calibration = run_load(
            host, port, clients=MAX_INFLIGHT, auths_per_client=8, farm=farm
        )
        assert calibration["failures"] == 0, calibration["failure_samples"]
        offered = max(50.0, OVERLOAD_FACTOR * calibration["throughput_rps"])

        storm = run_overload(
            host,
            port,
            offered_rps=offered,
            duration_s=STORM_SECONDS,
            workers=WORKERS,
            farm=farm,
            deadline_ms=DEADLINE_MS,
        )
        recovery = run_load(
            host, port, clients=MAX_INFLIGHT, auths_per_client=8, farm=farm
        )
        gate = server.overload_stats()["admission"]

    # Correctness is absolute, not a threshold.
    assert storm["wrong"] == 0, storm
    assert storm["terminal_by_type"] == {}, storm
    assert storm["transport_errors"] == 0, storm
    assert storm["shed"] > 0 and storm["goodput"] > 0, storm
    assert recovery["failures"] == 0, recovery["failure_samples"]

    overload = {
        "problem": {
            "boards": BOARDS,
            "max_inflight": MAX_INFLIGHT,
            "overload_factor": OVERLOAD_FACTOR,
            "workers": WORKERS,
            "deadline_ms": DEADLINE_MS,
            "storm_seconds": STORM_SECONDS,
        },
        "offered_per_second": storm["offered_rps"],
        "goodput_per_second": storm["goodput_rps"],
        "admitted_p50_seconds": storm["admitted_latency_ms"]["p50"] / 1e3,
        "admitted_p99_seconds": storm["admitted_latency_ms"]["p99"] / 1e3,
        "shed_p50_seconds": storm["shed_latency_ms"]["p50"] / 1e3,
        "shed_p99_seconds": storm["shed_latency_ms"]["p99"] / 1e3,
        "recovery_p99_seconds": recovery["latency_ms"]["p99"] / 1e3,
        "shed_fraction": storm["shed"] / max(1, storm["sent"]),
    }
    save_bench_json("serve_overload", {"overload": overload})

    text = "\n".join(
        [
            f"serve overload: {storm['offered_rps']:.0f} rps offered "
            f"(~{OVERLOAD_FACTOR:g}x sustainable) for {STORM_SECONDS:g}s, "
            f"{MAX_INFLIGHT} admission slots",
            f"  sent {storm['sent']}  goodput {storm['goodput']}  "
            f"shed {storm['shed']}  wrong {storm['wrong']}",
            f"  shed by type   {storm['shed_by_type']}",
            f"  admitted       p50 {storm['admitted_latency_ms']['p50']:7.2f}"
            f" ms   p99 {storm['admitted_latency_ms']['p99']:7.2f} ms",
            f"  shed           p50 {storm['shed_latency_ms']['p50']:7.2f}"
            f" ms   p99 {storm['shed_latency_ms']['p99']:7.2f} ms",
            f"  recovery       p99 {recovery['latency_ms']['p99']:7.2f} ms, "
            f"{recovery['failures']} failures",
            f"  gate           admitted {gate['admitted']}  "
            f"shed {gate['shed']}  expired {gate['expired']}  "
            f"peak inflight {gate['peak_inflight']}",
        ]
    )
    save_artifact("serve_overload", text)

    # Shedding must be far cheaper than admitted work — that economy is
    # the whole mechanism.
    assert (
        storm["shed_latency_ms"]["p50"] < storm["admitted_latency_ms"]["p50"]
    )
