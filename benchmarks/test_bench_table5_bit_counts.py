"""E8 — Table V: bits per board; the 4x hardware-efficiency claim."""

from conftest import run_once

from repro.experiments.table5_bits import (
    PAPER_TABLE5,
    format_result,
    run_table5,
)


def test_bench_table5_bit_counts(benchmark, save_artifact):
    rows = run_once(benchmark, run_table5)
    save_artifact("table5_bit_counts", format_result(rows))

    for row in rows:
        expected = PAPER_TABLE5[row.stage_count]
        assert (
            row.configurable_bits,
            row.traditional_bits,
            row.one_of_8_bits,
        ) == expected
        # Abstract: "4X more hardware efficient than ... 1-out-of-8".
        assert row.hardware_advantage == 4.0
