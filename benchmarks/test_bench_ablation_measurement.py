"""A3 — ablation: measurement jitter vs ddiff accuracy and margin loss.

Averaging repeats must shrink the ddiff extraction error roughly as
1/sqrt(repeats), and at the calibrated jitter level (0.05%) the selection
loses only a small fraction of the optimal margin — the quantitative
backing for the paper's claim that the scheme "does not require a very
high accuracy of the measurement".
"""

from conftest import run_once

from repro.experiments.ablations import (
    format_noise_ablation,
    run_measurement_noise_ablation,
)


def test_bench_ablation_measurement(benchmark, save_artifact):
    result = run_once(benchmark, run_measurement_noise_ablation)
    save_artifact("ablation_measurement", format_noise_ablation(result))

    sigmas = result.noise_sigmas
    # More repeats -> smaller extraction error, at every jitter level.
    for sigma in sigmas:
        errors = [result.ddiff_rms_error[(sigma, r)] for r in result.repeats]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < errors[0] / 2.0

    # At the default jitter (5e-4) with default averaging (5 repeats), the
    # margin loss stays moderate; at the lowest jitter it is negligible.
    assert result.margin_loss_percent[(min(sigmas), max(result.repeats))] < 2.0
    # Extreme jitter without averaging destroys the selection.
    worst = result.margin_loss_percent[(max(sigmas), min(result.repeats))]
    best = result.margin_loss_percent[(min(sigmas), max(result.repeats))]
    assert worst > best + 10.0
