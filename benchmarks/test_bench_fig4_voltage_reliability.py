"""E6 — Fig. 4: bit flips under supply-voltage variation.

Paper observations reproduced as assertions:
1. the traditional bar is the tallest (most unreliable);
2. configurable flips shrink as n grows and reach 0% at n = 7 and 9;
3. the 1-out-of-8 bar is zero everywhere;
4. mid-voltage enrollment is at least as good as the extremes.
"""

import numpy as np
from conftest import run_once

from repro.experiments.fig4_reliability import (
    FIG4_STAGE_COUNTS,
    format_result,
    run_voltage_reliability,
)


def test_bench_fig4_voltage_reliability(benchmark, paper_dataset, save_artifact):
    result = run_once(benchmark, run_voltage_reliability, dataset=paper_dataset)
    save_artifact("fig4_voltage_reliability", format_result(result))

    assert len(result.subplots) == 5 * len(FIG4_STAGE_COUNTS)

    # (1) configurable beats traditional at every ring length, on average.
    for n in FIG4_STAGE_COUNTS:
        assert result.mean_configurable_flips(n) < result.mean_traditional_flips(n)

    # (2) flips shrink with n; 0% at n = 7 and n = 9 on every board.
    assert result.mean_configurable_flips(3) >= result.mean_configurable_flips(7)
    for subplot in result.subplots:
        if subplot.stage_count >= 7:
            assert np.all(subplot.configurable_flip_percent == 0.0), subplot

    # (3) 1-out-of-8 is flawless.
    assert result.max_one_of_8_flips() == 0.0

    # (4) mid-voltage enrollment (index 1..3) no worse than the extremes.
    middle = []
    extreme = []
    for subplot in result.subplots:
        bars = subplot.configurable_flip_percent
        middle.append(np.mean(bars[1:4]))
        extreme.append(np.mean(bars[[0, 4]]))
    assert np.mean(middle) <= np.mean(extreme) + 1e-9

    # Traditional PUF actually flips somewhere (the baseline is not trivial).
    assert result.mean_traditional_flips(3) > 1.0
