"""A5 — aging ablation: margin-maximised bits survive silicon wear-out.

NBTI-style drift reorders device delays over the years; the traditional
PUF's near-zero margins flip early while the configurable PUF's maximised
margins hold — the lifetime extension of the paper's reliability claim.
"""

from conftest import run_once

from repro.experiments.extensions import format_aging_study, run_aging_study


def test_bench_ablation_aging(benchmark, save_artifact):
    study = run_once(benchmark, run_aging_study)
    save_artifact("ablation_aging", format_aging_study(study))

    configurable = study.flip_percent["case2"]
    traditional = study.flip_percent["traditional"]
    # The configurable PUF beats the traditional at every age...
    for young, old in zip(configurable, traditional):
        assert young <= old
    # ...the traditional PUF degrades visibly within the first decade...
    assert traditional[-1] > 5.0
    # ...while the configurable PUF stays near-perfect even at end of life.
    assert configurable[-1] < 3.0
