"""B-serve — authentication service latency under concurrent load.

Drives a real :class:`~repro.serve.server.AuthServer` with the built-in
load harness (16 clients x 8 rounds cycling attest / regen /
challenge-auth through the request coalescer) and records the
sketch-backed latency percentiles: overall and per-verb p50/p99, plus
aggregate throughput.  Results land in ``results/BENCH_serve.json``;
the serve-smoke CI job gates them against the committed baseline with
``ropuf bench compare --metric seconds`` at a generous threshold —
absolute latencies are noisy on shared runners, but an
order-of-magnitude regression must not land silently.
"""

from repro.serve import (
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
    RequestCoalescer,
    run_load,
)

BOARDS = 2
CLIENTS = 16
AUTHS_PER_CLIENT = 8
MAX_BATCH = 32
WINDOW_S = 0.002


def test_bench_serve_latency(save_artifact, save_bench_json):
    farm = DeviceFarm.from_config(FleetConfig(boards=BOARDS))
    service = AuthService(
        farm,
        CRPStore(None),
        coalescer=RequestCoalescer(max_batch=MAX_BATCH, max_wait_s=WINDOW_S),
    )
    service.enroll_fleet()
    with AuthServer(service).start() as server:
        host, port = server.address
        summary = run_load(
            host,
            port,
            clients=CLIENTS,
            auths_per_client=AUTHS_PER_CLIENT,
            farm=farm,
        )
    assert summary["failures"] == 0, summary["failure_samples"]

    load = {
        "problem": {
            "boards": BOARDS,
            "clients": CLIENTS,
            "auths_per_client": AUTHS_PER_CLIENT,
            "max_batch": MAX_BATCH,
        },
        "p50_seconds": summary["latency_ms"]["p50"] / 1e3,
        "p99_seconds": summary["latency_ms"]["p99"] / 1e3,
        "requests_per_second": summary["throughput_rps"],
    }
    for verb, quantiles in sorted(summary["latency_ms_by_verb"].items()):
        key = verb.replace("-", "_")
        load[f"{key}_p50_seconds"] = quantiles["p50"] / 1e3
        load[f"{key}_p99_seconds"] = quantiles["p99"] / 1e3
    save_bench_json("serve", {"load": load})

    lines = [
        f"serve latency: {CLIENTS} clients x {AUTHS_PER_CLIENT} rounds, "
        f"{BOARDS} boards, coalescer <= {MAX_BATCH}",
        f"  overall        p50 {summary['latency_ms']['p50']:7.2f} ms   "
        f"p99 {summary['latency_ms']['p99']:7.2f} ms",
    ]
    lines.extend(
        f"  {verb:<14} p50 {quantiles['p50']:7.2f} ms   "
        f"p99 {quantiles['p99']:7.2f} ms"
        for verb, quantiles in sorted(summary["latency_ms_by_verb"].items())
    )
    lines.append(f"  throughput     {summary['throughput_rps']:7.1f} req/s")
    save_artifact("serve_latency", "\n".join(lines))

    for quantiles in summary["latency_ms_by_verb"].values():
        assert 0.0 < quantiles["p50"] <= quantiles["p99"]
