"""E-batch — loop vs vectorized response-engine speedup.

A 128-pair board (9-stage rings, 2304 delay units) swept over 16 supply
voltages — the Fig. 4-shaped workload that used to cost
``pairs x corners`` Python iterations.  The equivalence half pins the
vectorized ``BatchEvaluator.response_sweep`` bit-identical to the
preserved per-pair loop (``response_loop_reference``) and is cheap enough
for the CI smoke job (``-k equivalence``); the timing half additionally
requires a 5x speedup and records the numbers in
``results/BENCH_response.json``.
"""

import time

import numpy as np

from repro.core.batch import response_loop_reference
from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF
from repro.variation.environment import OperatingPoint

PAIR_COUNT = 128
STAGE_COUNT = 9
OP_COUNT = 16
REQUIRED_SPEEDUP = 5.0


def _make_puf():
    rng = np.random.default_rng(2024)
    ring_count = 2 * PAIR_COUNT
    n_units = ring_count * STAGE_COUNT
    base = rng.normal(1.0, 0.02, n_units)
    sensitivity = rng.normal(0.05, 0.01, n_units)

    def provider(op):
        return base * (1.0 + sensitivity * (1.20 - op.voltage))

    allocation = RingAllocation(stage_count=STAGE_COUNT, ring_count=ring_count)
    return BoardROPUF(delay_provider=provider, allocation=allocation, method="case1")


def _make_ops():
    return [
        OperatingPoint(voltage, 25.0)
        for voltage in np.linspace(0.90, 1.50, OP_COUNT)
    ]


def _loop_sweep(puf, enrollment, ops):
    return np.stack([response_loop_reference(puf, enrollment, op) for op in ops])


def test_response_engine_equivalence():
    """Vectorized sweep bits == per-pair loop bits (no timing pin)."""
    puf = _make_puf()
    ops = _make_ops()
    enrollment = puf.enroll(ops[OP_COUNT // 2])
    sweep_bits = puf.batch(enrollment).response_sweep(ops)
    assert sweep_bits.shape == (OP_COUNT, PAIR_COUNT)
    assert np.array_equal(sweep_bits, _loop_sweep(puf, enrollment, ops))


def test_bench_batch_engine(benchmark, save_artifact, save_bench_json):
    puf = _make_puf()
    ops = _make_ops()
    enrollment = puf.enroll(ops[OP_COUNT // 2])
    evaluator = puf.batch(enrollment)
    # Warm the compiled-mask cache so the timed region measures evaluation.
    evaluator.response_sweep(ops)

    loop_rounds = 5
    round_times = []
    for _ in range(loop_rounds):
        start = time.perf_counter()
        loop_bits = _loop_sweep(puf, enrollment, ops)
        round_times.append(time.perf_counter() - start)
    loop_seconds = float(np.median(round_times))

    sweep_bits = benchmark(evaluator.response_sweep, ops)
    vectorized_seconds = benchmark.stats.stats.median
    speedup = loop_seconds / vectorized_seconds

    assert sweep_bits.shape == (OP_COUNT, PAIR_COUNT)
    assert np.array_equal(sweep_bits, loop_bits)
    save_artifact(
        "batch_engine",
        "\n".join(
            [
                "Batch response engine: "
                f"{PAIR_COUNT}-pair board, {OP_COUNT}-corner voltage sweep",
                f"per-pair loop:     {loop_seconds * 1e3:9.3f} ms/sweep",
                f"vectorized sweep:  {vectorized_seconds * 1e3:9.3f} ms/sweep",
                f"speedup:           {speedup:9.1f}x (required >= "
                f"{REQUIRED_SPEEDUP:.0f}x)",
            ]
        ),
    )
    save_bench_json(
        "response",
        {
            "engine": "response_sweep",
            "problem": {
                "pair_count": PAIR_COUNT,
                "stage_count": STAGE_COUNT,
                "op_count": OP_COUNT,
            },
            "reference_median_seconds": loop_seconds,
            "vectorized_median_seconds": vectorized_seconds,
            "speedup_vs_reference": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized sweep only {speedup:.1f}x faster than the loop"
    )
