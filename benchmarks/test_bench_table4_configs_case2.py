"""E5 — Table IV: HD distribution of Case-2 best configurations.

Paper reference (3104 30-bit vectors): mass concentrated on HD 12-18
(17.2 / 26.3 / 25.4 / 15.3 percent at 12/14/16/18), all HDs even, no
duplicates at HD 0 or 30.
"""

import numpy as np
from conftest import run_once

from repro.experiments.config_tables import format_result, run_config_study

PAPER_PERCENT = {8: 1.64, 10: 6.87, 12: 17.2, 14: 26.3, 16: 25.4, 18: 15.3, 20: 5.68}


def test_bench_table4_configs_case2(benchmark, paper_dataset, save_artifact):
    result = run_once(
        benchmark, run_config_study, dataset=paper_dataset, method="case2"
    )
    save_artifact("table4_configs_case2", format_result(result))

    assert result.vectors.shape == (3104, 30)
    assert result.odd_hd_pairs == 0
    percentages = result.hd_percentages
    for distance, paper_value in PAPER_PERCENT.items():
        assert abs(percentages[distance] - paper_value) < 6.0, (
            distance,
            percentages[distance],
            paper_value,
        )
    assert int(np.argmax(percentages)) in (14, 16)
    assert percentages[0] == 0.0  # no duplicate pair configurations
    assert percentages[30] == 0.0  # no complementary pairs either
