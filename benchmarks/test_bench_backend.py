"""B-backend — compute backends: the tiled sweep kernel's speedup pin.

The pluggable-backend claim (ROADMAP item 3) is that the ``tiled``
backend's ring-mask reformulation of the response-sweep kernel beats the
default einsum at fleet-scale shapes while staying bit-identical.  Both
backends run the exact kernel the batch engine dispatches
(:meth:`Backend.sweep_pair_delay_sums`) on the same operating-point
tensor; the speedup and both wall times land in
``results/BENCH_backend.json`` for the CI regression gate
(``ropuf bench compare --metric speedup``).
"""

import time

import numpy as np

from repro.backends import resolve_backend

# Fleet-scale sweep: every ring of a large board measured at 24 operating
# points, selections of 4096 pairs over 5-stage configurable ROs.
OPS = 24
PAIRS = 4096
STAGES = 5
RINGS = 8192

REPEATS = 20

#: The tiled ring-mask sweep must beat the einsum by at least this factor
#: at the shape above (observed ~1.8x on the reference runner).
REQUIRED_SPEEDUP = 1.5


def _sweep_problem():
    rng = np.random.default_rng(2014)
    stacked = rng.normal(1.0, 0.02, size=(OPS, RINGS, STAGES))
    # Disjoint top/bottom ring draws, like a compiled selection batch.
    rings = rng.permutation(RINGS)[: 2 * PAIRS]
    top_rings, bottom_rings = rings[:PAIRS], rings[PAIRS:]
    top_masks = rng.integers(0, 2, size=(PAIRS, STAGES)).astype(float)
    bottom_masks = rng.integers(0, 2, size=(PAIRS, STAGES)).astype(float)
    return stacked, top_rings, bottom_rings, top_masks, bottom_masks


def _median_seconds(backend, problem) -> float:
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        backend.sweep_pair_delay_sums(*problem)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_bench_backend_sweep(save_artifact, save_bench_json):
    problem = _sweep_problem()
    numpy_backend = resolve_backend("numpy")
    tiled_backend = resolve_backend("tiled")

    # The contract first: same kernel, same bits.
    numpy_out = numpy_backend.sweep_pair_delay_sums(*problem)
    tiled_out = tiled_backend.sweep_pair_delay_sums(*problem)
    for got, want in zip(tiled_out, numpy_out):
        assert np.array_equal(got, want)

    numpy_seconds = _median_seconds(numpy_backend, problem)
    tiled_seconds = _median_seconds(tiled_backend, problem)
    speedup = numpy_seconds / tiled_seconds

    save_bench_json(
        "backend",
        {
            "sweep": {
                "problem": {
                    "ops": OPS,
                    "pairs": PAIRS,
                    "stages": STAGES,
                    "rings": RINGS,
                },
                "numpy_seconds": numpy_seconds,
                "tiled_seconds": tiled_seconds,
                "tiled_speedup": speedup,
                "required_speedup": REQUIRED_SPEEDUP,
            },
        },
    )
    save_artifact(
        "backend_sweep",
        "\n".join(
            [
                f"sweep kernel: {OPS} ops x {PAIRS} pairs x {STAGES} stages "
                f"over {RINGS} rings (median of {REPEATS})",
                f"  numpy (einsum)     {numpy_seconds * 1e3:8.3f} ms",
                f"  tiled (ring-mask)  {tiled_seconds * 1e3:8.3f} ms",
                f"  speedup            x{speedup:.2f} "
                f"(required x{REQUIRED_SPEEDUP:.1f})",
            ]
        ),
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"tiled sweep only x{speedup:.2f} over numpy "
        f"(required x{REQUIRED_SPEEDUP:.1f})"
    )
