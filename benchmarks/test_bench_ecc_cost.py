"""A7 — the cost of ECC (Sec. III.C's 'eliminate the ECC circuitry' claim).

Sizes the smallest BCH code each scheme would need to hit a 1e-6 key-block
failure target given its measured bit-error rate across all (V, T)
corners.  The traditional PUF requires a heavyweight code; the Case-2
configurable PUF requires none.
"""

from conftest import run_once

from repro.experiments.extensions import (
    format_ecc_cost_study,
    run_ecc_cost_study,
)


def test_bench_ecc_cost(benchmark, paper_dataset, save_artifact):
    study = run_once(benchmark, run_ecc_cost_study, dataset=paper_dataset)
    save_artifact("ecc_cost", format_ecc_cost_study(study))

    by_scheme = {r.scheme: r for r in study.requirements}
    # The paper's claim: the configurable PUF can skip ECC entirely.
    assert not by_scheme["case2"].needs_ecc
    # The traditional PUF pays a serious code for the same guarantee.
    assert by_scheme["traditional"].t >= 5
    assert (
        by_scheme["traditional"].overhead_bits_per_key_bit
        > by_scheme["case1"].overhead_bits_per_key_bit
    )
    assert (
        by_scheme["case1"].overhead_bits_per_key_bit
        >= by_scheme["case2"].overhead_bits_per_key_bit
    )
