"""B-ipc — worker payload transport: shared memory vs pipe pickling.

The zero-copy claim is that a large ndarray result crossing the
worker-to-parent pipe via :mod:`repro.pipeline.shm` beats pickling the
bytes through the pipe by at least 2x.  Both modes run the *executor's
own* encode/decode path against a real child process — with a worker
session installed the array rides a shared-memory segment, without one
``encode_payload`` is a passthrough and the pipe carries every byte.
Results land in ``results/BENCH_ipc.json`` for the CI regression gate
(``ropuf bench compare --metric speedup``).
"""

import multiprocessing
import time

import numpy as np

from repro.pipeline import shm

#: Payload size: a 64 MiB float64 result tensor (fleet-shard scale).
PAYLOAD_MIB = 64
ELEMENTS = PAYLOAD_MIB * (1 << 20) // 8

REPEATS = 5

#: The shm path must beat pipe pickling by at least this factor.
REQUIRED_SPEEDUP = 2.0


def _child_main(conn, shm_token):
    """Serve round-trip requests until told to stop.

    With ``shm_token`` set this is exactly the worker posture: a session
    is installed and ``encode_payload`` moves the array into a segment.
    With ``None`` encode is a passthrough and the pipe pickles the bytes.
    """
    shm.set_worker_session(shm_token)
    array = np.arange(ELEMENTS, dtype=np.float64)
    while True:
        if conn.recv() is None:
            break
        payload = {"task": "bench", "result": array, "error": None}
        conn.send(shm.encode_payload(payload))


def _measure_round_trips(shm_token) -> float:
    """Median seconds for one request -> decoded-array round trip."""
    conn, child_conn = multiprocessing.Pipe()
    process = multiprocessing.Process(
        target=_child_main, args=(child_conn, shm_token), daemon=True
    )
    process.start()
    child_conn.close()
    try:
        times = []
        for _ in range(REPEATS + 1):  # first iteration warms the child up
            start = time.perf_counter()
            conn.send("go")
            payload = shm.decode_payload(conn.recv())
            times.append(time.perf_counter() - start)
            assert payload["result"].nbytes == ELEMENTS * 8
        return float(np.median(times[1:]))
    finally:
        conn.send(None)
        process.join(timeout=10.0)
        if process.is_alive():
            process.kill()
            process.join()
        conn.close()
        if shm_token is not None:
            shm.sweep_segments(shm_token)


def test_bench_ipc_round_trip(save_artifact, save_bench_json):
    pickle_seconds = _measure_round_trips(None)
    shm_seconds = _measure_round_trips(shm.new_token())
    speedup = pickle_seconds / shm_seconds

    save_bench_json(
        "ipc",
        {
            "round_trip": {
                "problem": {"payload_mib": PAYLOAD_MIB},
                "pickle_seconds": pickle_seconds,
                "shm_seconds": shm_seconds,
                "shm_speedup": speedup,
                "required_speedup": REQUIRED_SPEEDUP,
            },
        },
    )
    save_artifact(
        "ipc_round_trip",
        "\n".join(
            [
                f"worker payload round trip: {PAYLOAD_MIB} MiB float64 "
                f"(median of {REPEATS})",
                f"  pipe pickle    {pickle_seconds * 1e3:8.1f} ms",
                f"  shared memory  {shm_seconds * 1e3:8.1f} ms",
                f"  speedup        x{speedup:.2f} "
                f"(required x{REQUIRED_SPEEDUP:.1f})",
            ]
        ),
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"shm transport only x{speedup:.2f} over pipe pickling "
        f"(required x{REQUIRED_SPEEDUP:.1f})"
    )
