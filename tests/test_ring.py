"""Unit tests of delay units and configurable rings."""

import numpy as np
import pytest

from repro.core.config_vector import ConfigVector
from repro.core.delay_unit import DelayUnit
from repro.core.ring import ConfigurableRO
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint


@pytest.fixture()
def ring(chip):
    return ConfigurableRO(chip=chip, unit_indices=np.arange(5), name="r0")


class TestDelayUnit:
    def test_delay_by_selection(self, chip):
        unit = DelayUnit(chip, 0)
        op = NOMINAL_OPERATING_POINT
        selected = unit.delay(True, op)
        bypassed = unit.delay(False, op)
        assert selected == pytest.approx(
            unit.inverter_delay(op) + unit.mux_selected_delay(op)
        )
        assert bypassed == pytest.approx(unit.mux_bypass_delay(op))

    def test_ddiff_matches_chip(self, chip):
        unit = DelayUnit(chip, 3)
        assert unit.ddiff() == pytest.approx(chip.ddiffs()[3])

    def test_index_bounds(self, chip):
        with pytest.raises(ValueError):
            DelayUnit(chip, chip.unit_count)
        with pytest.raises(ValueError):
            DelayUnit(chip, -1)


class TestConfigurableRO:
    def test_stage_count(self, ring):
        assert ring.stage_count == 5
        assert len(ring) == 5

    def test_rejects_duplicate_units(self, chip):
        with pytest.raises(ValueError, match="twice"):
            ConfigurableRO(chip=chip, unit_indices=np.array([0, 0, 1]))

    def test_rejects_out_of_range_units(self, chip):
        with pytest.raises(ValueError, match="out of range"):
            ConfigurableRO(chip=chip, unit_indices=np.array([0, 1000]))

    def test_rejects_empty(self, chip):
        with pytest.raises(ValueError):
            ConfigurableRO(chip=chip, unit_indices=np.array([], dtype=int))

    def test_chain_delay_all_selected(self, ring, chip):
        config = ConfigVector.all_selected(5)
        expected = np.sum(chip.selected_path_delays()[:5])
        assert ring.chain_delay(config) == pytest.approx(expected)

    def test_chain_delay_none_selected(self, ring, chip):
        config = ConfigVector.none_selected(5)
        expected = np.sum(chip.mux_bypass_delays()[:5])
        assert ring.chain_delay(config) == pytest.approx(expected)

    def test_chain_delay_mixed(self, ring, chip):
        config = ConfigVector.from_string("10110")
        selected = chip.selected_path_delays()[:5]
        bypass = chip.mux_bypass_delays()[:5]
        mask = config.as_array()
        expected = np.sum(np.where(mask, selected, bypass))
        assert ring.chain_delay(config) == pytest.approx(expected)

    def test_config_length_mismatch(self, ring):
        with pytest.raises(ValueError, match="length"):
            ring.chain_delay(ConfigVector.all_selected(4))

    def test_frequency_requires_odd(self, ring):
        with pytest.raises(ValueError, match="even"):
            ring.frequency(ConfigVector.from_string("11000"))

    def test_frequency_value(self, ring):
        config = ConfigVector.from_string("11100")
        expected = 1.0 / (2.0 * ring.chain_delay(config))
        assert ring.frequency(config) == pytest.approx(expected)

    def test_frequency_drops_at_low_voltage(self, ring):
        config = ConfigVector.all_selected(5)
        nominal = ring.frequency(config)
        slow = ring.frequency(config, OperatingPoint(0.98, 25.0))
        assert slow < nominal

    def test_ddiffs_in_ring_order(self, chip):
        indices = np.array([7, 2, 9])
        ring = ConfigurableRO(chip=chip, unit_indices=indices)
        assert np.allclose(ring.ddiffs(), chip.ddiffs()[indices])

    def test_unit_accessor(self, ring, chip):
        unit = ring.unit(2)
        assert unit.index == 2
        assert unit.chip is chip
