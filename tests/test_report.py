"""Tests of the reproduction-report builder (on the small dataset)."""

import pytest

from repro.analysis.report import ClaimCheck, ReproductionReport, build_report


class TestReproductionReport:
    def test_markdown_structure(self):
        report = ReproductionReport(
            sections=[("Sec", "body text")],
            claims=[
                ClaimCheck(claim="c1", holds=True, evidence="e1"),
                ClaimCheck(claim="c2", holds=False, evidence="e2"),
            ],
        )
        text = report.to_markdown()
        assert "# Reproduction report" in text
        assert "| PASS | c1 | e1 |" in text
        assert "| FAIL | c2 | e2 |" in text
        assert "## Sec" in text and "body text" in text

    def test_all_claims_hold(self):
        good = ReproductionReport(
            claims=[ClaimCheck(claim="c", holds=True, evidence="e")]
        )
        bad = ReproductionReport(
            claims=[ClaimCheck(claim="c", holds=False, evidence="e")]
        )
        assert good.all_claims_hold
        assert not bad.all_claims_hold

    def test_save(self, tmp_path):
        report = ReproductionReport(
            claims=[ClaimCheck(claim="c", holds=True, evidence="e")]
        )
        path = report.save(tmp_path / "report.md")
        assert path.read_text().startswith("# Reproduction report")


@pytest.mark.slow
class TestBuildReport:
    def test_builds_on_small_dataset(self, small_dataset):
        report = build_report(small_dataset)
        assert len(report.sections) >= 10
        assert len(report.claims) >= 10
        text = report.to_markdown()
        assert "Table V" in text
        assert "NIST" in text
        # Table V and the in-house threshold study run at paper scale, so
        # those claims hold regardless of the small dataset.
        by_claim = {c.claim: c for c in report.claims}
        table5 = by_claim["Table V bit counts and the 4x hardware advantage"]
        assert table5.holds
