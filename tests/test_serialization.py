"""Tests of enrollment / helper-data persistence."""

import json

import numpy as np
import pytest

from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF
from repro.core.serialization import (
    enrollment_from_dict,
    enrollment_to_dict,
    helper_data_from_dict,
    helper_data_to_dict,
    load_enrollment,
    save_enrollment,
)
from repro.crypto.ecc import BCHCode
from repro.crypto.fuzzy_extractor import FuzzyExtractor
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint


@pytest.fixture()
def enrollment(rng):
    delays = rng.normal(1.0, 0.02, 60)
    allocation = RingAllocation(stage_count=3, ring_count=10)
    puf = BoardROPUF(
        delay_provider=lambda op: delays, allocation=allocation, method="case2"
    )
    return puf.enroll(OperatingPoint(1.08, 35.0))


class TestEnrollmentRoundTrip:
    def test_dict_round_trip(self, enrollment):
        record = enrollment_to_dict(enrollment)
        restored = enrollment_from_dict(record)
        assert restored.operating_point == enrollment.operating_point
        assert np.array_equal(restored.bits, enrollment.bits)
        assert np.allclose(restored.margins, enrollment.margins)
        for a, b in zip(restored.selections, enrollment.selections):
            assert a.top_config == b.top_config
            assert a.bottom_config == b.bottom_config
            assert a.method == b.method

    def test_file_round_trip(self, enrollment, tmp_path):
        path = tmp_path / "device.json"
        save_enrollment(enrollment, path)
        restored = load_enrollment(path)
        assert np.array_equal(restored.bits, enrollment.bits)

    def test_json_is_plain(self, enrollment, tmp_path):
        path = tmp_path / "device.json"
        save_enrollment(enrollment, path)
        record = json.loads(path.read_text())
        assert record["format_version"] == 1
        assert isinstance(record["selections"][0]["top"], str)

    def test_secretless_serialisation(self, enrollment):
        record = enrollment_to_dict(enrollment, include_secrets=False)
        assert "bits" not in record
        assert "margins" not in record
        assert "margin" not in record["selections"][0]
        restored = enrollment_from_dict(record)
        assert restored.bit_count == enrollment.bit_count
        assert not restored.bits.any()

    def test_version_check(self, enrollment):
        record = enrollment_to_dict(enrollment)
        record["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            enrollment_from_dict(record)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_enrollment(tmp_path / "ghost.json")

    def test_restored_enrollment_drives_responses(self, enrollment, rng, tmp_path):
        # The whole point: provision once, respond after a "reboot".
        delays = rng.normal(1.0, 0.02, 60)
        allocation = RingAllocation(stage_count=3, ring_count=10)
        puf = BoardROPUF(
            delay_provider=lambda op: delays, allocation=allocation, method="case2"
        )
        original = puf.enroll(NOMINAL_OPERATING_POINT)
        path = tmp_path / "nvm.json"
        save_enrollment(original, path)
        restored = load_enrollment(path)
        response = puf.response(NOMINAL_OPERATING_POINT, restored)
        assert np.array_equal(response, original.bits)


class TestHelperDataRoundTrip:
    def test_round_trip(self, rng):
        extractor = FuzzyExtractor(code=BCHCode(m=4, t=2))
        response = rng.integers(0, 2, extractor.response_bits).astype(bool)
        key, helper = extractor.generate(response, rng)
        record = helper_data_to_dict(helper)
        restored = helper_data_from_dict(record)
        assert np.array_equal(restored.offset, helper.offset)
        assert restored.salt == helper.salt
        assert extractor.reproduce(response, restored) == key

    def test_json_serialisable(self, rng):
        extractor = FuzzyExtractor(code=BCHCode(m=4, t=2))
        response = rng.integers(0, 2, extractor.response_bits).astype(bool)
        _, helper = extractor.generate(response, rng)
        text = json.dumps(helper_data_to_dict(helper))
        restored = helper_data_from_dict(json.loads(text))
        assert np.array_equal(restored.offset, helper.offset)

    def test_version_check(self, rng):
        extractor = FuzzyExtractor(code=BCHCode(m=4, t=2))
        response = rng.integers(0, 2, extractor.response_bits).astype(bool)
        _, helper = extractor.generate(response, rng)
        record = helper_data_to_dict(helper)
        record["format_version"] = 0
        with pytest.raises(ValueError, match="version"):
            helper_data_from_dict(record)
