"""Unit and property tests of the Sec. III.D selection algorithms."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.selection import (
    select_case1,
    select_case2,
    select_exhaustive,
    select_traditional,
)

delay_vectors = st.integers(1, 8).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(0.5, 1.5, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        ),
        st.lists(
            st.floats(0.5, 1.5, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        ),
    )
)


class TestCase1:
    def test_paper_sign_rule(self):
        alpha = np.array([1.0, 2.0, 3.0])
        beta = np.array([0.5, 2.5, 2.0])  # deltas: +0.5, -0.5, +1.0
        selection = select_case1(alpha, beta)
        # positive sum 1.5 > negative sum 0.5 -> select positive deltas
        assert selection.top_config.to_string() == "101"
        assert selection.top_config == selection.bottom_config
        assert selection.margin == pytest.approx(1.5)
        assert selection.bit is True

    def test_negative_direction_wins(self):
        alpha = np.array([1.0, 1.0])
        beta = np.array([3.0, 0.5])  # deltas: -2.0, +0.5
        selection = select_case1(alpha, beta)
        assert selection.top_config.to_string() == "10"
        assert selection.margin == pytest.approx(-2.0)
        assert selection.bit is False

    def test_degenerate_all_equal(self):
        alpha = np.ones(5)
        selection = select_case1(alpha, alpha.copy())
        assert selection.selected_count == 1
        assert selection.margin == pytest.approx(0.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            select_case1(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_case1(np.array([]), np.array([]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            select_case1(np.ones((2, 2)), np.ones((2, 2)))

    @given(delay_vectors)
    def test_optimal_vs_exhaustive(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        fast = select_case1(alpha, beta)
        brute = select_exhaustive(alpha, beta, same_config=True)
        assert fast.abs_margin == pytest.approx(brute.abs_margin, rel=1e-9)

    @given(delay_vectors)
    def test_margin_consistent_with_config(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        selection = select_case1(alpha, beta)
        mask = selection.top_config.as_array()
        recomputed = float(np.sum(alpha[mask]) - np.sum(beta[mask]))
        assert selection.margin == pytest.approx(recomputed, rel=1e-9)

    @given(delay_vectors)
    def test_require_odd_yields_odd_count(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        selection = select_case1(alpha, beta, require_odd=True)
        assert selection.selected_count % 2 == 1

    @given(delay_vectors)
    def test_require_odd_preserves_bit_outside_near_ties(self, vectors):
        # The parity adjustment costs at most max|delta| per direction, so
        # when |sum(delta)| exceeds twice that, the direction (and hence the
        # bit) cannot flip.  Near exact ties it legitimately can.
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        delta = alpha - beta
        if abs(np.sum(delta)) <= 2.0 * np.max(np.abs(delta)) + 1e-9:
            return
        free = select_case1(alpha, beta)
        odd = select_case1(alpha, beta, require_odd=True)
        assert odd.bit == free.bit

    @given(delay_vectors)
    def test_require_odd_optimal_among_odd(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        odd = select_case1(alpha, beta, require_odd=True)
        brute = select_exhaustive(alpha, beta, same_config=True, require_odd=True)
        assert odd.abs_margin == pytest.approx(brute.abs_margin, rel=1e-9)


class TestCase2:
    def test_beats_or_matches_case1(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            n = int(rng.integers(1, 10))
            alpha = rng.normal(1.0, 0.1, n)
            beta = rng.normal(1.0, 0.1, n)
            c1 = select_case1(alpha, beta)
            c2 = select_case2(alpha, beta)
            assert c2.abs_margin >= c1.abs_margin - 1e-12

    def test_equal_selected_counts(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            n = int(rng.integers(1, 12))
            alpha = rng.normal(1.0, 0.1, n)
            beta = rng.normal(1.0, 0.1, n)
            selection = select_case2(alpha, beta)
            assert (
                selection.top_config.selected_count
                == selection.bottom_config.selected_count
            )

    def test_known_example(self):
        alpha = np.array([5.0, 1.0])
        beta = np.array([4.0, 4.5])
        selection = select_case2(alpha, beta)
        # best: bottom faster direction loses to top? alpha max 5 - beta min 4
        # = 1 vs beta max 4.5 - alpha min 1 = 3.5 -> negative direction
        assert selection.margin == pytest.approx(-3.5)
        assert selection.top_config.to_string() == "01"
        assert selection.bottom_config.to_string() == "01"

    def test_degenerate_all_equal(self):
        alpha = np.ones(4)
        selection = select_case2(alpha, alpha.copy())
        assert selection.selected_count == 1
        assert selection.margin == pytest.approx(0.0)

    @given(delay_vectors)
    def test_optimal_vs_exhaustive(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        fast = select_case2(alpha, beta)
        brute = select_exhaustive(alpha, beta, same_config=False)
        assert fast.abs_margin == pytest.approx(brute.abs_margin, rel=1e-9)

    @given(delay_vectors)
    def test_margin_consistent_with_configs(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        selection = select_case2(alpha, beta)
        top = selection.top_config.as_array()
        bottom = selection.bottom_config.as_array()
        recomputed = float(np.sum(alpha[top]) - np.sum(beta[bottom]))
        assert selection.margin == pytest.approx(recomputed, rel=1e-9)

    @given(delay_vectors)
    def test_require_odd_yields_odd_equal_counts(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        selection = select_case2(alpha, beta, require_odd=True)
        assert selection.top_config.selected_count % 2 == 1
        assert (
            selection.top_config.selected_count
            == selection.bottom_config.selected_count
        )


class TestTraditional:
    def test_all_selected(self):
        alpha = np.array([1.0, 2.0])
        beta = np.array([1.5, 1.0])
        selection = select_traditional(alpha, beta)
        assert selection.top_config.selected_count == 2
        assert selection.margin == pytest.approx(0.5)

    @given(delay_vectors)
    def test_margin_is_total_difference(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        selection = select_traditional(alpha, beta)
        assert selection.margin == pytest.approx(
            float(np.sum(alpha) - np.sum(beta)), rel=1e-9
        )

    @given(delay_vectors)
    def test_require_odd_yields_odd_count(self, vectors):
        """Regression: require_odd used to be silently ignored (latching rings)."""
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        selection = select_traditional(alpha, beta, require_odd=True)
        assert selection.selected_count % 2 == 1
        assert selection.top_config.can_oscillate
        assert selection.top_config == selection.bottom_config

    def test_require_odd_odd_length_selects_all(self):
        alpha = np.array([1.0, 2.0, 3.0])
        beta = np.array([1.5, 1.0, 2.5])
        selection = select_traditional(alpha, beta, require_odd=True)
        assert selection.selected_count == 3

    def test_require_odd_even_length_drops_best_stage(self):
        # deltas: -0.5, +1.0, +0.5, +1.0 -> total +2.0.  Dropping the -0.5
        # stage leaves the largest magnitude margin (+2.5).
        alpha = np.array([1.0, 2.0, 3.0, 4.0])
        beta = np.array([1.5, 1.0, 2.5, 3.0])
        selection = select_traditional(alpha, beta, require_odd=True)
        assert selection.selected_count == 3
        assert selection.top_config.to_string() == "0111"
        assert selection.margin == pytest.approx(2.5)

    @given(delay_vectors)
    def test_require_odd_drop_is_optimal(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        if len(alpha) % 2 == 1:
            return
        selection = select_traditional(alpha, beta, require_odd=True)
        delta = alpha - beta
        total = float(np.sum(delta))
        best_single_drop = float(np.max(np.abs(total - delta)))
        assert selection.abs_margin == pytest.approx(best_single_drop, rel=1e-9)


class TestBitSignIdentity:
    """Case-1, Case-2 and traditional produce the same bit (DESIGN.md).

    The identity: the Case-1 direction choice compares Delta+ with -Delta-,
    whose difference is sum(Delta); the Case-2 direction sums satisfy
    best_neg = best_pos - sum(Delta) when the count ranges over 0..n.  So
    outside exact ties all three bits equal sign(sum(alpha) - sum(beta)).
    """

    @given(delay_vectors)
    def test_all_three_bits_agree(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        traditional = select_traditional(alpha, beta)
        if abs(traditional.margin) < 1e-9:
            return  # exact tie: direction is arbitrary
        c1 = select_case1(alpha, beta)
        c2 = select_case2(alpha, beta)
        assert c1.bit == traditional.bit
        assert c2.bit == traditional.bit


class TestExhaustive:
    def test_rejects_large_rings(self):
        with pytest.raises(ValueError, match="exhaustive"):
            select_exhaustive(np.ones(13), np.ones(13), same_config=True)

    def test_case2_counts_equal(self):
        rng = np.random.default_rng(2)
        alpha = rng.normal(1, 0.1, 5)
        beta = rng.normal(1, 0.1, 5)
        brute = select_exhaustive(alpha, beta, same_config=False)
        assert (
            brute.top_config.selected_count == brute.bottom_config.selected_count
        )

    def test_require_odd(self):
        rng = np.random.default_rng(3)
        alpha = rng.normal(1, 0.1, 6)
        beta = rng.normal(1, 0.1, 6)
        brute = select_exhaustive(
            alpha, beta, same_config=True, require_odd=True
        )
        assert brute.top_config.selected_count % 2 == 1
