"""NIST frequency-family tests: spec worked examples plus edge behaviour.

Expected values are from the worked examples of NIST SP 800-22 Rev 1a.
"""

import numpy as np
import pytest

from repro.nist.basic_tests import (
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test,
    runs_test,
)
from repro.nist.common import InsufficientDataError, as_bits

LONGEST_RUN_EXAMPLE = (
    "11001100000101010110110001001100111000000000001001"
    "00110101010001000100111101011010000000110101111100"
    "1100111001101101100010110010"
)


class TestFrequency:
    def test_spec_example(self):
        assert frequency_test("1011010101").p_value == pytest.approx(
            0.527089, abs=1e-6
        )

    def test_all_ones_fails(self):
        outcome = frequency_test("1" * 100)
        assert outcome.p_value < 1e-10
        assert not outcome.passed

    def test_balanced_sequence_passes(self):
        assert frequency_test("10" * 50).p_value == pytest.approx(1.0)

    def test_statistic_recorded(self):
        outcome = frequency_test("1011010101")
        assert outcome.details["S_n"] == 2
        assert outcome.details["n"] == 10

    def test_too_short(self):
        with pytest.raises(InsufficientDataError):
            frequency_test("1")


class TestBlockFrequency:
    def test_spec_example(self):
        outcome = block_frequency_test("0110011010", block_size=3)
        assert outcome.p_value == pytest.approx(0.801252, abs=1e-6)

    def test_alternating_blocks_fail(self):
        sequence = "1" * 8 + "0" * 8
        outcome = block_frequency_test(sequence * 16, block_size=8)
        assert not outcome.passed

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            block_frequency_test("0101", block_size=1)

    def test_too_short(self):
        with pytest.raises(InsufficientDataError):
            block_frequency_test("01", block_size=8)


class TestRuns:
    def test_spec_example(self):
        assert runs_test("1001101011").p_value == pytest.approx(
            0.147232, abs=1e-6
        )

    def test_prerequisite_failure_returns_zero(self):
        outcome = runs_test("1" * 99 + "0")
        assert outcome.p_value == 0.0
        assert outcome.details.get("prerequisite_failed")

    def test_perfect_alternation_fails(self):
        outcome = runs_test("10" * 500)
        assert outcome.p_value < 1e-10

    def test_long_runs_fail(self):
        rng = np.random.default_rng(0)
        # blocks of 16 identical bits: far too few runs
        bits = np.repeat(rng.integers(0, 2, 64), 16).astype(bool)
        assert runs_test(bits).p_value < 1e-6


class TestLongestRun:
    def test_spec_example_128_bits(self):
        assert len(LONGEST_RUN_EXAMPLE) == 128
        outcome = longest_run_test(LONGEST_RUN_EXAMPLE)
        assert outcome.p_value == pytest.approx(0.180609, abs=2e-4)

    def test_minimum_length_enforced(self):
        with pytest.raises(InsufficientDataError):
            longest_run_test("01" * 63)

    def test_uses_m128_table_for_long_input(self, rng):
        bits = rng.integers(0, 2, 7000).astype(bool)
        outcome = longest_run_test(bits)
        assert outcome.details["block_size"] == 128

    def test_pathological_sequence_fails(self):
        # No run of ones longer than 1 anywhere: hugely improbable.
        outcome = longest_run_test("10" * 256)
        assert outcome.p_value < 1e-10

    def test_random_passes_mostly(self, rng):
        p_values = [
            longest_run_test(rng.integers(0, 2, 512).astype(bool)).p_value
            for _ in range(30)
        ]
        assert np.mean(np.array(p_values) >= 0.01) > 0.8


class TestCumulativeSums:
    def test_spec_example_forward(self):
        outcomes = cumulative_sums_test("1011010111")
        forward = outcomes[0]
        assert forward.variant == "forward"
        assert forward.p_value == pytest.approx(0.4116588, abs=5e-6)
        assert forward.details["z"] == 4

    def test_two_modes_returned(self):
        outcomes = cumulative_sums_test("1011010111")
        assert [o.variant for o in outcomes] == ["forward", "backward"]

    def test_symmetric_sequence_same_both_ways(self):
        outcomes = cumulative_sums_test("0110" * 8)
        assert outcomes[0].details["z"] >= 1

    def test_drifting_sequence_fails(self):
        outcomes = cumulative_sums_test("1" * 80 + "0" * 20)
        assert outcomes[0].p_value < 1e-10

    def test_random_passes(self, rng):
        bits = rng.integers(0, 2, 1000).astype(bool)
        for outcome in cumulative_sums_test(bits):
            assert outcome.p_value > 0.001


class TestAsBits:
    def test_string_with_whitespace(self):
        bits = as_bits("10 01\n10")
        assert bits.tolist() == [True, False, False, True, True, False]

    def test_rejects_non_binary_values(self):
        with pytest.raises(ValueError):
            as_bits(np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            as_bits("012")

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            as_bits(np.ones((2, 2)))

    def test_bool_passthrough(self):
        bits = np.array([True, False])
        assert np.array_equal(as_bits(bits), bits)
