"""Admission control and deadline propagation, from arithmetic to wire.

Three layers, same contract:

* :class:`~repro.serve.admission.Deadline` budgets never go negative and
  only shrink as time passes (property-tested — the arithmetic is pure
  over caller-supplied clocks);
* the :class:`~repro.serve.admission.AdmissionGate` admits at most
  ``max_inflight`` requests, rejects the rest *immediately* (nothing
  queues), and sheds already-expired requests before they waste a slot;
* on the wire, ``Overloaded`` and ``DeadlineExceeded`` are retriable
  error frames that leave the connection alive and the stream in sync,
  and the exempt introspection verbs still answer on a saturated server.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve import (
    AuthClient,
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
    RequestCoalescer,
)
from repro.serve.admission import (
    AdmissionGate,
    Deadline,
    DeadlineExceeded,
    Overloaded,
    parse_deadline,
)

budgets = st.floats(min_value=1e-3, max_value=1e9)
offsets = st.floats(min_value=0.0, max_value=1e7)


class TestDeadline:
    def test_fresh_budget_not_expired(self):
        deadline = Deadline.after_ms(1000.0, now=100.0)
        assert not deadline.expired(now=100.5)
        assert deadline.remaining_ms(now=100.5) == pytest.approx(500.0)

    def test_expired_after_budget(self):
        deadline = Deadline.after_ms(10.0, now=0.0)
        assert deadline.expired(now=0.011)
        assert deadline.remaining_ms(now=0.011) == 0.0

    @pytest.mark.parametrize(
        "bad", [0.0, -1.0, float("nan"), float("inf"), -float("inf")]
    )
    def test_nonpositive_or_nonfinite_budget_rejected(self, bad):
        with pytest.raises(ValueError, match="deadline_ms"):
            Deadline.after_ms(bad)

    def test_parse_absent_is_none(self):
        assert parse_deadline({"op": "ping"}) is None

    @pytest.mark.parametrize("bad", ["100", True, False, [100], {}])
    def test_parse_non_numeric_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_deadline({"op": "ping", "deadline_ms": bad})

    @pytest.mark.parametrize("bad", [0, -5, float("nan")])
    def test_parse_bad_budget_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_deadline({"op": "ping", "deadline_ms": bad})

    @given(budget_ms=budgets, elapsed_s=offsets)
    def test_remaining_budget_never_negative(self, budget_ms, elapsed_s):
        deadline = Deadline.after_ms(budget_ms, now=0.0)
        assert deadline.remaining_ms(now=elapsed_s) >= 0.0
        assert deadline.remaining_s(now=elapsed_s) >= 0.0

    @given(budget_ms=budgets, first_s=offsets, extra_s=offsets)
    def test_remaining_budget_monotone_in_time(
        self, budget_ms, first_s, extra_s
    ):
        deadline = Deadline.after_ms(budget_ms, now=0.0)
        earlier = deadline.remaining_ms(now=first_s)
        later = deadline.remaining_ms(now=first_s + extra_s)
        assert later <= earlier

    @given(budget_ms=budgets)
    def test_remaining_budget_never_exceeds_granted(self, budget_ms):
        deadline = Deadline.after_ms(budget_ms, now=0.0)
        assert deadline.remaining_ms(now=0.0) <= budget_ms * (1 + 1e-9)

    @given(budget_ms=budgets, elapsed_s=offsets)
    def test_expired_iff_budget_spent(self, budget_ms, elapsed_s):
        deadline = Deadline.after_ms(budget_ms, now=0.0)
        if deadline.expired(now=elapsed_s):
            assert deadline.remaining_ms(now=elapsed_s) == 0.0
        else:
            assert deadline.remaining_ms(now=elapsed_s) > 0.0


class TestAdmissionGate:
    def test_admits_up_to_capacity_then_sheds(self):
        gate = AdmissionGate(2)
        first = gate.try_admit()
        second = gate.try_admit()
        with pytest.raises(Overloaded, match="capacity"):
            gate.try_admit()
        first.release()
        third = gate.try_admit()  # the freed slot is reusable
        second.release()
        third.release()
        stats = gate.stats()
        assert stats["admitted"] == 3
        assert stats["shed"] == 1
        assert stats["inflight"] == 0
        assert stats["peak_inflight"] == 2

    def test_release_is_idempotent(self):
        gate = AdmissionGate(1)
        permit = gate.try_admit()
        permit.release()
        permit.release()
        assert gate.inflight == 0
        gate.try_admit()  # a double release must not mint extra capacity
        with pytest.raises(Overloaded):
            gate.try_admit()

    def test_permit_is_a_context_manager(self):
        gate = AdmissionGate(1)
        with gate.try_admit():
            assert gate.inflight == 1
        assert gate.inflight == 0

    def test_expired_deadline_shed_before_slot(self):
        gate = AdmissionGate(1)
        dead = Deadline.after_ms(0.001)
        time.sleep(0.002)
        with pytest.raises(DeadlineExceeded):
            gate.try_admit(dead)
        stats = gate.stats()
        assert stats["expired"] == 1
        assert stats["inflight"] == 0  # no slot was consumed

    def test_live_deadline_admitted(self):
        gate = AdmissionGate(1)
        with gate.try_admit(Deadline.after_ms(60_000.0)):
            assert gate.inflight == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionGate(0)

    def test_inflight_bounded_under_contention(self):
        gate = AdmissionGate(4)
        barrier = threading.Barrier(16)

        def worker():
            barrier.wait()
            for _ in range(50):
                try:
                    permit = gate.try_admit()
                except Overloaded:
                    continue
                permit.release()

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = gate.stats()
        assert stats["inflight"] == 0
        assert stats["peak_inflight"] <= 4
        assert stats["admitted"] + stats["shed"] == 16 * 50


@pytest.fixture(scope="module")
def tight_stack():
    """A server with one admission slot and a generous coalescing window,
    so a single in-flight request saturates the gate long enough to poke
    it from a second connection."""
    farm = DeviceFarm.from_config(FleetConfig(boards=2))
    service = AuthService(
        farm,
        CRPStore(None),
        coalescer=RequestCoalescer(max_batch=64, max_wait_s=0.25),
    )
    service.enroll_fleet()
    server = AuthServer(service, max_inflight=1).start()
    try:
        yield server, service, farm
    finally:
        server.stop()


def saturate(server, farm, started: threading.Event):
    """Occupy the single admission slot with one real attest."""
    host, port = server.address
    device = farm.device_ids[0]
    corner = next(iter(farm)).corners[0]

    def occupy():
        with AuthClient(host, port) as client:
            started.set()
            client.attest(device, corner)

    thread = threading.Thread(target=occupy, daemon=True)
    thread.start()
    return thread


class TestOverloadOnTheWire:
    def test_overloaded_frame_keeps_connection_alive(self, tight_stack):
        server, _, farm = tight_stack
        device = farm.device_ids[0]
        corner = next(iter(farm)).corners[0]
        started = threading.Event()
        with AuthClient(*server.address) as client:
            occupier = saturate(server, farm, started)
            started.wait(timeout=1.0)
            time.sleep(0.05)  # let the occupier reach the coalescer window
            rejected = client.attest(device, corner)
            occupier.join(timeout=5.0)
            assert rejected["ok"] is False
            assert rejected["error_type"] == "Overloaded"
            assert rejected["retriable"] is True
            # Same connection, same stream: the next request round-trips.
            accepted = client.attest(device, corner)
            assert accepted["ok"] is True and accepted["accepted"] is True

    def test_exempt_verbs_answer_on_a_saturated_server(self, tight_stack):
        server, _, farm = tight_stack
        started = threading.Event()
        with AuthClient(*server.address) as client:
            occupier = saturate(server, farm, started)
            started.wait(timeout=1.0)
            time.sleep(0.05)
            assert client.ping()["ok"] is True
            health = client.health()
            assert health["ok"] is True and health["status"] == "ok"
            assert client.ready()["ready"] is True
            occupier.join(timeout=5.0)

    def test_spent_deadline_is_shed_with_typed_frame(self, tight_stack):
        server, _, farm = tight_stack
        device = farm.device_ids[0]
        corner = next(iter(farm)).corners[0]
        with AuthClient(*server.address) as client:
            # 1 microsecond of budget is long gone by the time the frame
            # crosses even a loopback socket.
            shed = client.attest(device, corner, deadline_ms=0.001)
            assert shed["ok"] is False
            assert shed["error_type"] == "DeadlineExceeded"
            assert shed["retriable"] is True
            fine = client.attest(device, corner, deadline_ms=60_000.0)
            assert fine["ok"] is True

    def test_malformed_deadline_is_bad_request(self, tight_stack):
        server, _, farm = tight_stack
        device = farm.device_ids[0]
        with AuthClient(*server.address) as client:
            for bad in ("fast", True, -5, 0):
                response = client.call(
                    "attest", device=device, deadline_ms=bad
                )
                assert response["ok"] is False
                assert response["error_type"] == "BadRequest"
                assert response["retriable"] is False
            assert client.ping()["ok"] is True

    def test_overload_rejections_visible_in_stats(self, tight_stack):
        server, _, farm = tight_stack
        with AuthClient(*server.address) as client:
            stats = client.stats()
        overload = stats["overload"]
        assert overload["admission"]["max_inflight"] == 1
        assert overload["admission"]["shed"] >= 1  # from the test above
        assert (
            stats["service"]["overload.Overloaded"]
            == overload["admission"]["shed"]
        )
