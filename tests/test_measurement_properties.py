"""Hypothesis property tests for the Sec. III.B measurement schemes.

On noiseless measurements the chain delay is *exactly* affine in the
configuration vector, so every identification scheme must agree: the
least-squares estimator over any full-rank configuration set recovers the
same per-unit ddiffs as the leave-one-out closed form, which in turn equals
the ring's true ddiffs — for random stage counts, random configuration
sets, and random silicon.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config_vector import ConfigVector
from repro.core.measurement import (
    DelayMeasurer,
    leave_one_out_vectors,
    measure_ddiffs_least_squares,
    measure_ddiffs_leave_one_out,
    random_config_set,
    three_stage_ddiffs,
)
from repro.core.ring import ConfigurableRO
from repro.silicon.fabrication import FabricationProcess
from repro.variation.noise import NoiselessMeasurement

#: ddiffs are ~1e-10 s; compare schemes at float64 relative precision.
RTOL = 1e-9


def _ring(stage_count: int, seed: int) -> ConfigurableRO:
    chip = FabricationProcess().fabricate(
        stage_count, np.random.default_rng(seed), name=f"prop{seed}"
    )
    return ConfigurableRO(chip=chip, unit_indices=np.arange(stage_count))


def _noiseless_measurer() -> DelayMeasurer:
    return DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)


class TestNoiselessSchemeAgreement:
    @given(
        stage_count=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_leave_one_out_recovers_true_ddiffs(self, stage_count, seed):
        ring = _ring(stage_count, seed)
        estimate = measure_ddiffs_leave_one_out(_noiseless_measurer(), ring)
        np.testing.assert_allclose(estimate.ddiffs, ring.ddiffs(), rtol=RTOL)

    @given(
        stage_count=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_least_squares_on_loo_vectors_matches_closed_form(
        self, stage_count, seed
    ):
        ring = _ring(stage_count, seed)
        configs = leave_one_out_vectors(stage_count)
        loo = measure_ddiffs_leave_one_out(_noiseless_measurer(), ring)
        ls = measure_ddiffs_least_squares(_noiseless_measurer(), ring, configs)
        np.testing.assert_allclose(ls.ddiffs, loo.ddiffs, rtol=RTOL)
        assert ls.residual_rms <= RTOL * float(np.max(ls.measurements))

    @settings(max_examples=25)
    @given(
        stage_count=st.integers(min_value=2, max_value=8),
        extra=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        config_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_least_squares_on_random_config_sets_matches_closed_form(
        self, stage_count, extra, seed, config_seed
    ):
        ring = _ring(stage_count, seed)
        count = min(stage_count + 1 + extra, 2**stage_count)
        if count < stage_count + 1:
            return  # tiny rings cannot host the requested set
        configs = random_config_set(
            stage_count, count, np.random.default_rng(config_seed)
        )
        loo = measure_ddiffs_leave_one_out(_noiseless_measurer(), ring)
        ls = measure_ddiffs_least_squares(_noiseless_measurer(), ring, configs)
        np.testing.assert_allclose(ls.ddiffs, loo.ddiffs, rtol=RTOL)

    @given(
        stage_count=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_least_squares_intercept_is_bypass_sum(self, stage_count, seed):
        ring = _ring(stage_count, seed)
        configs = leave_one_out_vectors(stage_count)
        ls = measure_ddiffs_least_squares(_noiseless_measurer(), ring, configs)
        np.testing.assert_allclose(
            ls.intercept, float(np.sum(ring.bypass_delays())), rtol=RTOL
        )

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_three_stage_closed_form_consistency(self, seed):
        # The paper's X/Y/Z formulas invert exactly when applied to chain
        # delays built from the idealisation they assume (no bypass delay):
        # X = dd1 + dd2, Y = dd1 + dd3, Z = dd2 + dd3.
        rng = np.random.default_rng(seed)
        dd = rng.uniform(1e-11, 1e-9, size=3)
        x, y, z = dd[0] + dd[1], dd[0] + dd[2], dd[1] + dd[2]
        np.testing.assert_allclose(
            three_stage_ddiffs(x, y, z), dd, rtol=RTOL
        )

    @given(
        stage_count=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_measurement_is_config_order_invariant(self, stage_count, seed):
        # Chain delay is a sum over stages: permuting which configuration
        # is measured first cannot change any estimate on noiseless data.
        ring = _ring(stage_count, seed)
        configs = leave_one_out_vectors(stage_count)
        ls = measure_ddiffs_least_squares(_noiseless_measurer(), ring, configs)
        reversed_ls = measure_ddiffs_least_squares(
            _noiseless_measurer(), ring, list(reversed(configs))
        )
        np.testing.assert_allclose(reversed_ls.ddiffs, ls.ddiffs, rtol=RTOL)


class TestMeasurerDeterminism:
    def test_default_measurer_is_seeded(self):
        # The determinism guarantee of the pipeline rests on this: two
        # default-constructed measurers produce identical noisy readings.
        ring = _ring(5, seed=3)
        config = ConfigVector.all_selected(5)
        first = DelayMeasurer().chain_delay(ring, config)
        second = DelayMeasurer().chain_delay(ring, config)
        assert first == second

    def test_explicit_rng_gives_independent_stream(self):
        ring = _ring(5, seed=3)
        config = ConfigVector.all_selected(5)
        default = DelayMeasurer().chain_delay(ring, config)
        other = DelayMeasurer(rng=np.random.default_rng(123)).chain_delay(
            ring, config
        )
        assert default != other
