"""Tests of the cooperative (ordering-encoded) RO PUF baseline."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.cooperative import (
    CooperativeROPUF,
    bits_per_group,
    lehmer_decode,
    lehmer_encode,
    permutation_to_bits,
)
from repro.core.pairing import RingAllocation
from repro.variation.environment import NOMINAL_OPERATING_POINT
from repro.variation.noise import GaussianNoise


class TestLehmerCode:
    def test_identity_permutation_is_rank_zero(self):
        assert lehmer_encode(np.arange(5)) == 0

    def test_reverse_permutation_is_max_rank(self):
        assert lehmer_encode(np.array([3, 2, 1, 0])) == math.factorial(4) - 1

    def test_known_small_case(self):
        # permutations of (0,1,2) in lexicographic order
        expected = {
            (0, 1, 2): 0, (0, 2, 1): 1, (1, 0, 2): 2,
            (1, 2, 0): 3, (2, 0, 1): 4, (2, 1, 0): 5,
        }
        for permutation, rank in expected.items():
            assert lehmer_encode(np.array(permutation)) == rank

    @given(st.permutations(list(range(6))))
    def test_encode_decode_round_trip(self, permutation):
        permutation = np.array(permutation)
        rank = lehmer_encode(permutation)
        assert np.array_equal(lehmer_decode(rank, 6), permutation)

    def test_encode_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            lehmer_encode(np.array([0, 0, 1]))

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            lehmer_decode(math.factorial(4), 4)
        with pytest.raises(ValueError):
            lehmer_decode(-1, 4)


class TestBitsPerGroup:
    def test_known_values(self):
        assert bits_per_group(2) == 1  # log2(2) = 1
        assert bits_per_group(4) == 4  # log2(24) = 4.58
        assert bits_per_group(5) == 6  # log2(120) = 6.9

    def test_rejects_tiny_groups(self):
        with pytest.raises(ValueError):
            bits_per_group(1)

    def test_permutation_to_bits_width(self):
        bits = permutation_to_bits(np.array([2, 0, 3, 1]))
        assert len(bits) == 4

    def test_distinct_orderings_mostly_distinct_bits(self):
        import itertools

        words = {
            tuple(permutation_to_bits(np.array(p)).tolist())
            for p in itertools.permutations(range(4))
        }
        # 24 orderings folded into 16 codes: at least 16 distinct.
        assert len(words) == 16


class TestCooperativeROPUF:
    def make_puf(self, data_rng, rings=16, stages=3, **kwargs):
        delays = data_rng.normal(1.0, 0.02, rings * stages)
        allocation = RingAllocation(stage_count=stages, ring_count=rings)
        return CooperativeROPUF(
            delay_provider=lambda op: delays, allocation=allocation, **kwargs
        )

    def test_bit_count_doubles_traditional(self, rng):
        puf = self.make_puf(rng)
        # 16 rings: traditional pairs -> 8 bits; cooperative g=4 -> 16 bits.
        assert puf.bit_count == 16
        assert puf.group_count == 4

    def test_enroll_structure(self, rng):
        puf = self.make_puf(rng)
        enrollment = puf.enroll()
        assert enrollment.bit_count == 16
        assert len(enrollment.orderings) == 4
        assert len(enrollment.rank_margins) == 4
        assert np.all(enrollment.rank_margins > 0)

    def test_orderings_are_slowest_first(self, rng):
        puf = self.make_puf(rng)
        enrollment = puf.enroll()
        delays = puf._ring_totals(NOMINAL_OPERATING_POINT)
        ordering = enrollment.orderings[0]
        group = delays[:4]
        assert np.all(np.diff(group[ordering]) <= 0)

    def test_noiseless_response_matches(self, rng):
        puf = self.make_puf(rng)
        enrollment = puf.enroll()
        response = puf.response(NOMINAL_OPERATING_POINT, enrollment)
        assert np.array_equal(response, enrollment.bits)

    def test_noise_flips_orderings_more_than_pairs(self):
        # Cooperative encoding is more fragile: adjacent-rank swaps flip
        # several bits.  Check that noise produces flips at all.
        rng = np.random.default_rng(0)
        puf = self.make_puf(
            rng,
            rings=64,
            response_noise=GaussianNoise(relative_sigma=0.01),
            rng=np.random.default_rng(1),
        )
        enrollment = puf.enroll()
        flips = 0
        for _ in range(10):
            response = puf.response(NOMINAL_OPERATING_POINT, enrollment)
            flips += int(np.sum(response != enrollment.bits))
        assert flips > 0

    def test_group_size_validation(self, rng):
        with pytest.raises(ValueError):
            self.make_puf(rng, group_size=1)

    def test_utilisation_beats_pairing(self, rng):
        puf = self.make_puf(rng, rings=32)
        bits_per_ring = puf.bit_count / 32
        assert bits_per_ring == 1.0  # vs 0.5 for pairing, 0.125 for 1-of-8
