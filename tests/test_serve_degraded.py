"""Degraded read-only mode: losing the store's append path must cost
exactly the enrollment-mutating verbs, never authentication.

The store appends before touching its memory index, so an ``OSError``
from the append path leaves reads serving the last durable state.  The
service turns that into a mode: mutating verbs (``evict``) fail fast
with a typed ``DegradedReadOnly`` error, ``health`` reports the reason,
the auth path keeps answering, and a lazy rate-limited re-probe of the
append path clears the mode once the disk heals.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve import (
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
)
from repro.serve.protocol import encode_bits


@pytest.fixture()
def farm() -> DeviceFarm:
    return DeviceFarm.from_config(FleetConfig(boards=2))


def make_service(farm, tmp_path, **overrides) -> AuthService:
    store = CRPStore(tmp_path / "crp.jsonl")
    service = AuthService(farm, store, **overrides)
    service.enroll_fleet()
    return service


def break_append(service: AuthService) -> dict:
    """Make every journal append raise, counting the attempts."""
    calls = {"appends": 0}

    def dead_append(record):
        calls["appends"] += 1
        raise OSError(28, "No space left on device")

    service.store._append = dead_append
    return calls


def heal_append(service: AuthService) -> None:
    del service.store._append  # fall back to the class implementation


def genuine_auth(service: AuthService, device_id: str) -> dict:
    issued = service.handle({"op": "challenge", "device": device_id})
    assert issued["ok"] is True
    record = service.store.get(device_id)
    answer = encode_bits(record.reference_bits[np.array(issued["indices"])])
    return service.handle(
        {
            "op": "auth",
            "device": device_id,
            "challenge_id": issued["challenge_id"],
            "answer": answer,
        }
    )


class TestEnteringDegradedMode:
    def test_failed_append_enters_degraded_with_typed_error(
        self, farm, tmp_path
    ):
        service = make_service(farm, tmp_path)
        try:
            break_append(service)
            response = service.handle(
                {"op": "evict", "device": farm.device_ids[0]}
            )
            assert response["ok"] is False
            assert response["error_type"] == "DegradedReadOnly"
            assert "read-only" in response["error"]
            assert service.degraded is True
        finally:
            service.close()

    def test_memory_index_untouched_by_failed_evict(self, farm, tmp_path):
        service = make_service(farm, tmp_path)
        try:
            break_append(service)
            device = farm.device_ids[0]
            service.handle({"op": "evict", "device": device})
            # The evict never reached the journal, so the device is
            # still enrolled and still authenticates.
            assert device in service.store
            assert genuine_auth(service, device)["accepted"] is True
        finally:
            service.close()

    def test_degraded_mode_fails_fast_without_touching_disk(
        self, farm, tmp_path
    ):
        service = make_service(
            farm, tmp_path, degraded_probe_interval_s=60.0
        )
        try:
            calls = break_append(service)
            device = farm.device_ids[0]
            service.handle({"op": "evict", "device": device})
            assert calls["appends"] == 1
            # Every further mutation inside the probe interval is
            # rejected on the cached reason — zero append attempts.
            for _ in range(5):
                rejected = service.handle({"op": "evict", "device": device})
                assert rejected["error_type"] == "DegradedReadOnly"
            assert calls["appends"] == 1
        finally:
            service.close()

    def test_health_reports_the_degradation(self, farm, tmp_path):
        service = make_service(farm, tmp_path)
        try:
            healthy = service.handle({"op": "health"})
            assert healthy["status"] == "ok" and not healthy["degraded"]
            break_append(service)
            service.handle({"op": "evict", "device": farm.device_ids[0]})
            degraded = service.handle({"op": "health"})
            assert degraded["ok"] is True  # the process itself is alive
            assert degraded["status"] == "degraded"
            assert degraded["degraded"] is True
            assert "No space left" in degraded["reason"]
            stats = service.handle({"op": "stats"})["stats"]
            assert stats["degraded"] is True
            assert stats["service"]["degraded.entered"] == 1
        finally:
            service.close()

    def test_auth_path_unaffected_while_degraded(self, farm, tmp_path):
        service = make_service(farm, tmp_path)
        try:
            break_append(service)
            service.handle({"op": "evict", "device": farm.device_ids[0]})
            corner_owner = next(iter(farm))
            corner = corner_owner.corners[0]
            for device in farm.device_ids:
                assert genuine_auth(service, device)["accepted"] is True
                attested = service.handle(
                    {
                        "op": "attest",
                        "device": device,
                        "voltage": corner.voltage,
                        "temperature": corner.temperature,
                    }
                )
                assert attested["ok"] is True and attested["accepted"]
        finally:
            service.close()


class TestRecovery:
    def test_recovers_once_the_append_path_heals(self, farm, tmp_path):
        service = make_service(
            farm, tmp_path, degraded_probe_interval_s=0.05
        )
        try:
            break_append(service)
            device = farm.device_ids[0]
            service.handle({"op": "evict", "device": device})
            assert service.degraded is True
            heal_append(service)
            time.sleep(0.06)  # let the probe interval lapse
            evicted = service.handle({"op": "evict", "device": device})
            assert evicted["ok"] is True
            assert evicted["evicted"] == device
            assert service.degraded is False
            health = service.handle({"op": "health"})
            assert health["status"] == "ok"
            stats = service.handle({"op": "stats"})["stats"]
            assert stats["service"]["degraded.recovered"] == 1
        finally:
            service.close()

    def test_probe_is_rate_limited_while_broken(self, farm, tmp_path):
        service = make_service(
            farm, tmp_path, degraded_probe_interval_s=0.1
        )
        try:
            break_append(service)
            device = farm.device_ids[0]
            service.handle({"op": "evict", "device": device})
            # Break the probe itself too, then count how often it runs.
            probes = {"count": 0}

            def counting_probe():
                probes["count"] += 1
                return False

            service.store.probe_writable = counting_probe
            for _ in range(10):
                service.handle({"op": "evict", "device": device})
            # 10 rejections in well under the interval: at most one probe.
            assert probes["count"] <= 1
        finally:
            service.close()


class TestReadiness:
    def test_ready_requires_devices_and_live_coalescer(self, farm, tmp_path):
        service = make_service(farm, tmp_path)
        try:
            ready = service.handle({"op": "ready"})
            assert ready["ready"] is True
            assert ready["devices"] == len(farm.device_ids)
        finally:
            service.close()
        # After close the coalescer is gone: not ready, still answering.
        not_ready = service.handle({"op": "ready"})
        assert not_ready["ok"] is True
        assert not_ready["ready"] is False
        assert not_ready["coalescer_alive"] is False

    def test_empty_store_is_not_ready(self, farm):
        service = AuthService(farm, CRPStore(None))
        try:
            response = service.handle({"op": "ready"})
            assert response["ready"] is False
            assert response["devices"] == 0
        finally:
            service.close()


class TestProbeWritable:
    def test_in_memory_store_always_writable(self):
        assert CRPStore(None).probe_writable() is True

    def test_healthy_path_writable_and_unpolluted(self, tmp_path):
        store = CRPStore(tmp_path / "crp.jsonl")
        assert store.probe_writable() is True
        # The probe must not write journal bytes.
        path = tmp_path / "crp.jsonl"
        assert not path.exists() or path.stat().st_size == 0

    def test_impossible_path_not_writable(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        store = CRPStore(None)
        store.path = blocker / "crp.jsonl"
        assert store.probe_writable() is False
