"""Token-bucket accounting and the connection budgets, unit to wire.

The bucket is pure arithmetic over caller-supplied timestamps, so its
invariants are property-tested outright: tokens never go negative, never
exceed the burst ceiling, refill is monotone in elapsed time, and a
backwards clock adds nothing.  On the wire, ``RateLimited`` is a
retriable frame on a *surviving* connection, the global connection cap
answers with ``TooManyConnections`` before closing, and an idle
connection is reaped by the read timeout without hurting the listener.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve import (
    AuthClient,
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
    ServeClientError,
)
from repro.serve.ratelimit import ConnectionLimiter, RateLimiter, TokenBucket

steps = st.lists(
    st.tuples(
        st.floats(min_value=-10.0, max_value=10.0),  # clock jumps (±)
        st.booleans(),  # whether to attempt an acquire
    ),
    max_size=60,
)


class TestTokenBucketProperties:
    @given(
        rate=st.floats(min_value=0.01, max_value=1e3),
        burst=st.floats(min_value=1.0, max_value=1e3),
        trace=steps,
    )
    def test_tokens_bounded_and_grants_covered_by_refill(
        self, rate, burst, trace
    ):
        bucket = TokenBucket(rate, burst)
        now = 0.0
        elapsed_total = 0.0
        granted = 0
        for jump, attempt in trace:
            now += jump
            elapsed_total += max(0.0, jump)
            if attempt:
                granted += bucket.try_acquire(now)
            else:
                bucket.refill(now)
            assert 0.0 <= bucket.tokens <= bucket.burst
        # Conservation: every grant was paid for by the initial burst or
        # by forward-clock refill (with fp slack).
        assert granted <= burst + rate * elapsed_total + 1e-6

    @given(
        rate=st.floats(min_value=0.01, max_value=1e3),
        burst=st.floats(min_value=1.0, max_value=1e3),
        first=st.floats(min_value=0.0, max_value=1e3),
        extra=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_refill_monotone_in_elapsed_time(self, rate, burst, first, extra):
        shorter = TokenBucket(rate, burst)
        longer = TokenBucket(rate, burst)
        assert shorter.try_acquire(0.0) and longer.try_acquire(0.0)
        shorter.refill(first)
        longer.refill(first + extra)
        assert longer.tokens >= shorter.tokens - 1e-9

    @given(
        rate=st.floats(min_value=0.01, max_value=1e3),
        burst=st.floats(min_value=1.0, max_value=1e3),
        back=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_backwards_clock_adds_nothing(self, rate, burst, back):
        bucket = TokenBucket(rate, burst)
        assert bucket.try_acquire(100.0)
        before = bucket.tokens
        bucket.refill(100.0 - back)
        assert bucket.tokens == before

    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(1.0, 0.5)


class TestRateLimiter:
    def test_burst_then_limited_then_refilled(self):
        limiter = RateLimiter(rate=10.0, burst=2.0)
        assert limiter.try_acquire("a", now=0.0)
        assert limiter.try_acquire("a", now=0.0)
        assert not limiter.try_acquire("a", now=0.0)
        # 0.1 s at 10 rps refills one token.
        assert limiter.try_acquire("a", now=0.1)
        stats = limiter.stats()
        assert stats["allowed"] == 3 and stats["limited"] == 1

    def test_keys_are_independent(self):
        limiter = RateLimiter(rate=1.0, burst=1.0)
        assert limiter.try_acquire("a", now=0.0)
        assert limiter.try_acquire("b", now=0.0)
        assert not limiter.try_acquire("a", now=0.0)

    def test_lru_eviction_bounds_the_table(self):
        limiter = RateLimiter(rate=1.0, burst=1.0, max_keys=2)
        assert limiter.try_acquire("a", now=0.0)
        assert limiter.try_acquire("b", now=0.0)
        assert limiter.try_acquire("c", now=0.0)  # evicts a
        stats = limiter.stats()
        assert stats["keys"] == 2 and stats["evicted_keys"] == 1
        # The evicted key starts over with a full bucket: eviction is
        # only ever more permissive, never a denial amplifier.
        assert limiter.try_acquire("a", now=0.0)

    def test_recently_used_key_survives_eviction(self):
        limiter = RateLimiter(rate=0.01, burst=2.0, max_keys=2)
        limiter.try_acquire("a", now=0.0)
        limiter.try_acquire("b", now=0.0)
        limiter.try_acquire("a", now=0.001)  # refresh a; b is now LRU
        limiter.try_acquire("c", now=0.002)  # evicts b, not a
        # a survived with its spent bucket — an evicted key would have
        # started over full and been granted here.
        assert not limiter.try_acquire("a", now=0.003)
        assert limiter.stats()["evicted_keys"] == 1

    def test_default_burst_is_one_second_of_rate(self):
        assert RateLimiter(rate=7.0).burst == 7.0
        assert RateLimiter(rate=0.2).burst == 1.0  # floor at one token

    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="max_keys"):
            RateLimiter(rate=1.0, max_keys=0)
        with pytest.raises(ValueError, match="rate"):
            RateLimiter(rate=-1.0)


class TestConnectionLimiter:
    def test_cap_and_release(self):
        limiter = ConnectionLimiter(2)
        assert limiter.try_acquire() and limiter.try_acquire()
        assert not limiter.try_acquire()
        limiter.release()
        assert limiter.try_acquire()
        stats = limiter.stats()
        assert stats["accepted"] == 3
        assert stats["rejected"] == 1
        assert stats["peak"] == 2 and stats["active"] == 2

    def test_release_never_goes_negative(self):
        limiter = ConnectionLimiter(1)
        limiter.release()
        assert limiter.active == 0
        assert limiter.try_acquire()

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="max_connections"):
            ConnectionLimiter(0)


def build_server(**kwargs) -> tuple[AuthServer, AuthService]:
    farm = DeviceFarm.from_config(FleetConfig(boards=2))
    service = AuthService(farm, CRPStore(None))
    service.enroll_fleet()
    return AuthServer(service, **kwargs).start(), service


class TestRateLimitOnTheWire:
    def test_rate_limited_frame_keeps_connection_alive(self):
        server, _ = build_server(rate_limit=2.0, rate_burst=2.0)
        try:
            with AuthClient(*server.address) as client:
                assert client.ping()["ok"] is True
                assert client.ping()["ok"] is True
                limited = client.ping()
                assert limited["ok"] is False
                assert limited["error_type"] == "RateLimited"
                assert limited["retriable"] is True
                # The bucket refills while the same connection waits.
                time.sleep(0.6)
                assert client.ping()["ok"] is True
        finally:
            server.stop()

    def test_connection_cap_rejects_with_typed_frame(self):
        server, _ = build_server(max_connections=1)
        try:
            host, port = server.address
            with AuthClient(host, port) as first:
                assert first.ping()["ok"] is True  # slot provably held
                second = AuthClient(host, port)
                try:
                    rejected = second.ping()
                    assert rejected["ok"] is False
                    assert rejected["error_type"] == "TooManyConnections"
                    assert rejected["retriable"] is True
                    # The capped connection was then closed server-side.
                    with pytest.raises(ServeClientError):
                        second.ping()
                finally:
                    second.close()
            # Releasing the first connection frees the slot (the handler
            # thread releases asynchronously, so poll briefly).
            deadline = time.monotonic() + 2.0
            while True:
                with AuthClient(host, port) as third:
                    response = third.ping()
                if response.get("ok"):
                    break
                if time.monotonic() > deadline:
                    pytest.fail(f"slot never freed: {response}")
                time.sleep(0.02)
        finally:
            server.stop()

    def test_idle_connection_reaped_without_hurting_listener(self):
        server, service = build_server(idle_timeout=0.15)
        try:
            host, port = server.address
            with AuthClient(host, port) as idler:
                assert idler.ping()["ok"] is True
                time.sleep(0.5)  # make no frame progress past the timeout
                with pytest.raises(ServeClientError):
                    idler.ping()
            assert service._counts.get("protocol_errors.IdleTimeout", 0) >= 1
            with AuthClient(host, port) as fresh:
                assert fresh.ping()["ok"] is True
        finally:
            server.stop()
