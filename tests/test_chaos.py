"""Tests of the hardened executor under injected infrastructure chaos:
retry policies, worker crashes, hung tasks, corrupt cache entries, and
crash-safe journal resume."""

import json

import pytest

from repro.faults import ChaosPlan
from repro.pipeline import RetryPolicy, RunJournal, run_pipeline
from repro.pipeline.journal import JOURNAL_SCHEME


def _strip_meta(summary: dict) -> dict:
    return {k: v for k, v in summary.items() if not k.startswith("_")}


def _dumps(summary: dict) -> str:
    return json.dumps(_strip_meta(summary), sort_keys=True)


def _history(summary: dict, task: str) -> list[dict]:
    records = summary["_pipeline"]["tasks"]
    return next(r for r in records if r["task"] == task)["failure_history"]


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_seconds": -0.1},
            {"backoff_multiplier": 0.5},
            {"jitter_fraction": 1.5},
            {"jitter_fraction": -0.1},
            {"timeout_seconds": 0.0},
            {"timeout_seconds": -5.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_first_attempt_never_delays(self):
        policy = RetryPolicy(backoff_seconds=10.0)
        assert policy.delay_before("t", 1) == 0.0

    def test_zero_backoff_never_delays(self):
        policy = RetryPolicy(max_attempts=5)
        assert all(policy.delay_before("t", a) == 0.0 for a in range(1, 6))

    def test_exponential_growth_with_bounded_jitter(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_seconds=1.0, jitter_fraction=0.1
        )
        delays = [policy.delay_before("t", a) for a in (2, 3, 4)]
        for base, delay in zip((1.0, 2.0, 4.0), delays):
            assert base <= delay <= base * 1.1

    def test_jitter_is_deterministic_per_task_and_attempt(self):
        policy = RetryPolicy(backoff_seconds=1.0, max_attempts=3)
        assert policy.delay_before("a", 2) == policy.delay_before("a", 2)
        # different tasks decorrelate
        assert policy.delay_before("a", 2) != policy.delay_before("b", 2)


class TestChaosValidation:
    def test_serial_run_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_pipeline(tasks=["table5_bits"], jobs=1, chaos=7)

    def test_hang_without_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            run_pipeline(tasks=["table5_bits"], jobs=2, chaos=7)

    def test_hangless_plan_needs_no_timeout(self):
        plan = ChaosPlan(seed=7, hang=False, corrupt_cache=False)
        policy = RetryPolicy(max_attempts=3)
        summary = run_pipeline(
            tasks=["table5_bits"], jobs=2, chaos=plan, policy=policy
        )
        assert summary["table5_bits"]["n=3"]["configurable"] == 80


class TestChaosSurvival:
    """Each injected fault costs a retry, never the result."""

    def test_worker_crash_survived_bit_identically(self):
        clean = run_pipeline(tasks=["table5_bits"])
        plan = ChaosPlan(seed=7, hang=False, corrupt_cache=False)
        chaotic = run_pipeline(
            tasks=["table5_bits"],
            jobs=2,
            chaos=plan,
            policy=RetryPolicy(max_attempts=3),
            timings=True,
        )
        assert _dumps(chaotic) == _dumps(clean)
        history = _history(chaotic, "table5_bits")
        assert [h["kind"] for h in history] == ["crash"]
        assert history[0]["error_type"] == "WorkerCrash"
        assert "exit code" in history[0]["error"]

    def test_hung_task_killed_and_redispatched(self):
        clean = run_pipeline(tasks=["table5_bits"])
        plan = ChaosPlan(seed=3, crash=False, corrupt_cache=False)
        chaotic = run_pipeline(
            tasks=["table5_bits"],
            jobs=2,
            chaos=plan,
            policy=RetryPolicy(max_attempts=3, timeout_seconds=2.0),
            timings=True,
        )
        assert _dumps(chaotic) == _dumps(clean)
        history = _history(chaotic, "table5_bits")
        assert [h["kind"] for h in history] == ["timeout"]
        assert history[0]["error_type"] == "TaskTimeout"
        assert "wall-clock timeout" in history[0]["error"]

    def test_corrupted_cache_entry_quarantined_on_rerun(self, tmp_path):
        cache_dir = tmp_path / "cache"
        plan = ChaosPlan(seed=1, crash=False, hang=False)
        first = run_pipeline(
            tasks=["table5_bits"],
            jobs=2,
            cache_dir=cache_dir,
            chaos=plan,
            policy=RetryPolicy(max_attempts=3),
        )
        # the stored entry was truncated mid-file; a rerun must treat it
        # as a miss, quarantine it, and recompute to the same answer
        second = run_pipeline(
            tasks=["table5_bits"], cache_dir=cache_dir, timings=True
        )
        assert _dumps(second) == _dumps(first)
        assert len(list(cache_dir.glob("**/*.corrupt"))) == 1
        record = second["_pipeline"]["tasks"][0]
        assert record["cache_hit"] is False
        # the recomputed entry is clean: third run is a pure cache hit
        third = run_pipeline(
            tasks=["table5_bits"], cache_dir=cache_dir, timings=True
        )
        assert third["_pipeline"]["cache_hits"] == 1

    def test_full_chaos_run_completes_bit_identically(self, tmp_path):
        # The CI chaos-smoke pin: crash + hang + corrupt cache in one run,
        # retries >= 3 and a timeout, results identical to a clean run.
        tasks = ["table5_bits", "sec4e_threshold"]
        clean = run_pipeline(tasks=tasks)
        chaotic = run_pipeline(
            tasks=tasks,
            jobs=2,
            cache_dir=tmp_path / "cache",
            chaos=7,
            policy=RetryPolicy(max_attempts=3, timeout_seconds=15.0),
            timings=True,
        )
        assert _dumps(chaotic) == _dumps(clean)
        kinds = {
            h["kind"]
            for task in tasks
            for h in _history(chaotic, task)
        }
        assert kinds == {"crash", "timeout"}
        assert chaotic["_pipeline"]["failures"] == 0


class TestRunJournal:
    def test_round_trip(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("t1", "fp", "v1", {"x": 1})
        journal.append("t2", "fp", "v1", [1, 2])
        loaded = RunJournal(tmp_path / "run.jsonl").load("v1")
        assert loaded == {("t1", "fp"): {"x": 1}, ("t2", "fp"): [1, 2]}

    def test_missing_file_is_empty(self, tmp_path):
        assert RunJournal(tmp_path / "nope.jsonl").load("v1") == {}

    def test_version_mismatch_skipped(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("t1", "fp", "v1", {"x": 1})
        journal.append("t2", "fp", "v2", {"y": 2})
        assert RunJournal(journal.path).load("v2") == {("t2", "fp"): {"y": 2}}

    def test_truncated_tail_tolerated(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("t1", "fp", "v1", {"x": 1})
        journal.append("t2", "fp", "v1", {"y": 2})
        # simulate a crash mid-append: chop the last record in half
        text = journal.path.read_text()
        journal.path.write_text(text[: len(text) - 12])
        loaded = RunJournal(journal.path).load("v1")
        assert loaded == {("t1", "fp"): {"x": 1}}

    def test_scheme_mismatch_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record = {
            "scheme": "other-scheme",
            "version": "v1",
            "task": "t1",
            "fingerprint": "fp",
            "result": 1,
        }
        path.write_text(json.dumps(record) + "\n")
        assert RunJournal(path).load("v1") == {}
        assert JOURNAL_SCHEME == "ropuf-journal-v1"


class TestPipelineResume:
    def test_resumed_task_not_recomputed(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        first = run_pipeline(tasks=["table5_bits"], journal=journal_path)
        resumed = run_pipeline(
            tasks=["table5_bits"], journal=journal_path, timings=True
        )
        assert _dumps(resumed) == _dumps(first)
        record = resumed["_pipeline"]["tasks"][0]
        assert record["resumed"] is True
        assert record["attempts"] == 0

    def test_failed_tasks_are_not_checkpointed(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        plan = ChaosPlan(seed=7, hang=False, corrupt_cache=False)
        run_pipeline(
            tasks=["table5_bits"],
            jobs=2,
            journal=journal_path,
            chaos=plan,
            policy=RetryPolicy(max_attempts=1),  # the crash exhausts it
        )
        # the degraded run journaled nothing, so nothing resumes
        from repro.pipeline.cache import _repro_version

        assert RunJournal(journal_path).load(_repro_version()) == {}

    def test_journal_and_cache_compose(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        cache_dir = tmp_path / "cache"
        argv = dict(
            tasks=["table5_bits"], journal=journal_path, cache_dir=cache_dir
        )
        first = run_pipeline(**argv)
        # journal wins over cache on the rerun (resume beats recompute)
        resumed = run_pipeline(**argv, timings=True)
        assert _dumps(resumed) == _dumps(first)
        assert resumed["_pipeline"]["tasks"][0]["resumed"] is True
