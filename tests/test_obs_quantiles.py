"""Property tests of the quantile sketch: the documented rank-error
bound, merge commutativity, shard-order invariance, and the fixed-size
collapse — the contracts ``docs/observability.md`` documents and the
serve layer's live percentiles rely on."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.quantiles import (
    DEFAULT_MAX_BINS,
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
)

# Magnitudes span 12 decades — far inside the ~44-decade un-collapsed
# span at the default budget, so the error bound applies everywhere.
_magnitudes = st.floats(min_value=1e-6, max_value=1e6)
_values = st.one_of(st.just(0.0), _magnitudes, _magnitudes.map(lambda v: -v))
_samples = st.lists(_values, min_size=1, max_size=200)
_quantile_points = st.floats(min_value=0.0, max_value=1.0)


def _exact(samples: list[float], q: float) -> float:
    """The exact inverse-CDF sample value the sketch's bound refers to."""
    rank = max(0, math.ceil(q * len(samples)) - 1)
    return sorted(samples)[rank]


class TestErrorBound:
    @given(samples=_samples, q=_quantile_points)
    def test_rank_error_bound(self, samples, q):
        sketch = QuantileSketch()
        for value in samples:
            sketch.observe(value)
        exact = _exact(samples, q)
        estimate = sketch.quantile(q)
        bound = sketch.relative_accuracy * abs(exact)
        # Float slop: boundary values may round into the adjacent bucket,
        # where the error is exactly (not strictly below) the bound.
        assert abs(estimate - exact) <= bound * (1.0 + 1e-6) + 1e-12

    @given(samples=_samples)
    def test_extremes_are_exact(self, samples):
        sketch = QuantileSketch()
        for value in samples:
            sketch.observe(value)
        assert sketch.quantile(0.0) == min(samples)
        assert sketch.quantile(1.0) == max(samples)

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantiles() == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            QuantileSketch().quantile(1.5)

    def test_observe_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            QuantileSketch().observe(float("nan"))


class TestMergeInvariance:
    @given(a_samples=_samples, b_samples=_samples)
    def test_merge_is_commutative(self, a_samples, b_samples):
        def build(samples):
            sketch = QuantileSketch()
            for value in samples:
                sketch.observe(value)
            return sketch

        ab = build(a_samples)
        ab.merge(build(b_samples))
        ba = build(b_samples)
        ba.merge(build(a_samples))
        assert ab.to_dict() == ba.to_dict()

    @given(
        samples=st.lists(_values, min_size=1, max_size=200),
        shard_count=st.integers(min_value=1, max_value=5),
    )
    def test_sharded_equals_unsharded(self, samples, shard_count):
        unsharded = QuantileSketch()
        for value in samples:
            unsharded.observe(value)
        shards = [QuantileSketch() for _ in range(shard_count)]
        for i, value in enumerate(samples):
            shards[i % shard_count].observe(value)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        # The quantile state (integer bucket counters, count, min, max)
        # is exactly shard-order-invariant; ``total`` is a float sum and
        # order-sensitive only at the ulp level.
        merged_state = merged.to_dict()
        unsharded_state = unsharded.to_dict()
        merged_total = merged_state.pop("total")
        unsharded_total = unsharded_state.pop("total")
        assert merged_state == unsharded_state
        assert merged_total == pytest.approx(unsharded_total)

    def test_merge_rejects_config_mismatch(self):
        with pytest.raises(ValueError, match="config"):
            QuantileSketch(relative_accuracy=0.01).merge(
                QuantileSketch(relative_accuracy=0.02)
            )
        with pytest.raises(ValueError, match="config"):
            QuantileSketch(max_bins=64).merge(QuantileSketch(max_bins=128))


class TestCollapse:
    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_budget_is_respected_and_counts_preserved(self, seed):
        import random

        rng = random.Random(seed)
        sketch = QuantileSketch(max_bins=8)
        samples = [rng.uniform(1e-6, 1e6) for _ in range(500)]
        for value in samples:
            sketch.observe(value)
        assert len(sketch._positive) <= 8
        assert sketch.count == len(samples)
        assert sketch.quantile(1.0) == max(samples)

    def test_collapsed_state_is_order_invariant(self):
        # Far more distinct buckets than the budget: any observation
        # order must land on the same canonical collapsed state.
        values = [10.0**k for k in range(-6, 7)]
        forward = QuantileSketch(max_bins=4)
        backward = QuantileSketch(max_bins=4)
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        forward_state = forward.to_dict()
        backward_state = backward.to_dict()
        assert forward_state.pop("total") == pytest.approx(
            backward_state.pop("total")
        )
        assert forward_state == backward_state

    def test_high_quantiles_survive_collapse(self):
        # Collapse folds the low-magnitude tail; the p99 end stays sharp.
        sketch = QuantileSketch(max_bins=16)
        samples = [1.5**k for k in range(200)]
        for value in samples:
            sketch.observe(value)
        exact = _exact(samples, 0.99)
        assert abs(sketch.quantile(0.99) - exact) <= (
            sketch.relative_accuracy * exact * (1.0 + 1e-6)
        )


class TestSerialization:
    @given(samples=_samples)
    def test_round_trip_is_identity(self, samples):
        sketch = QuantileSketch()
        for value in samples:
            sketch.observe(value)
        payload = json.loads(json.dumps(sketch.to_dict()))
        restored = QuantileSketch.from_dict(payload)
        assert restored == sketch
        assert restored.quantile(0.99) == sketch.quantile(0.99)

    def test_empty_round_trip(self):
        restored = QuantileSketch.from_dict(QuantileSketch().to_dict())
        assert restored.count == 0
        assert restored.quantile(0.5) == 0.0

    def test_defaults(self):
        sketch = QuantileSketch()
        assert sketch.relative_accuracy == DEFAULT_RELATIVE_ACCURACY
        assert sketch.max_bins == DEFAULT_MAX_BINS

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(max_bins=1)
