"""Tests of the reporting helpers (tables, histograms)."""

import numpy as np
import pytest

from repro.analysis.histogram import bar_chart, histogram_lines
from repro.analysis.tables import Table, format_percent


class TestFormatPercent:
    def test_zero(self):
        assert format_percent(0.0) == "0"

    def test_tiny_values_tilde(self):
        assert format_percent(0.0004) == "~0"

    def test_regular_values(self):
        assert format_percent(32.8) == "32.8"
        assert format_percent(0.822) == "0.82"

    def test_paper_table_iv_style(self):
        # 0.015 and 1.64 should keep their leading digits
        assert format_percent(1.64).startswith("1.6")
        assert format_percent(0.015).startswith("0.015")


class TestTable:
    def test_render_alignment(self):
        table = Table(headers=["a", "bb"], title="T")
        table.add_row(1, 22)
        table.add_row(333, 4)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_arity_checked(self):
        table = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_table_renders(self):
        table = Table(headers=["only"])
        assert "only" in table.render()

    def test_str_matches_render(self):
        table = Table(headers=["x"])
        table.add_row(5)
        assert str(table) == table.render()


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart(["a", "b"], np.array([1.0, 2.0]), width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_label_value_present(self):
        text = bar_chart(["x"], np.array([3.0]), unit="%")
        assert "x |" in text and "3%" in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], np.array([1.0, 2.0]))

    def test_all_zero_values(self):
        text = bar_chart(["a"], np.array([0.0]))
        assert "#" not in text


class TestHistogramLines:
    def test_trims_empty_tails(self):
        centers = np.arange(5)
        counts = np.array([0, 0, 3, 1, 0])
        text = histogram_lines(centers, counts)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("2")

    def test_keep_tails_option(self):
        centers = np.arange(3)
        counts = np.array([0, 1, 0])
        text = histogram_lines(centers, counts, skip_empty_tails=False)
        assert len(text.splitlines()) == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            histogram_lines(np.arange(3), np.arange(4))
