"""CRP store tests: CRUD, durability, crash recovery, and a property test.

The crash tests simulate the failure the journal design is built for —
death mid-append — by corrupting the file's tail directly and asserting
the reopened store discards exactly the damaged suffix, repairs the file,
and keeps appending.  The Hypothesis test drives arbitrary interleavings
of enroll / evict / lookup / reopen against a plain-dict model, checking
the store never loses an acknowledged record and never serves one device
another device's CRPs.
"""

from __future__ import annotations

import hashlib
import itertools
import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.store import CRPStore, DeviceRecord


def make_record(device_id: str, seed: int = 0, bits: int = 16) -> DeviceRecord:
    """A deterministic little record, unique per (device_id, seed)."""
    rng = np.random.default_rng(
        int.from_bytes(hashlib.sha256(f"{device_id}:{seed}".encode()).digest()[:4], "big")
    )
    reference = rng.integers(0, 2, size=bits).astype(bool)
    offset = rng.integers(0, 2, size=bits - 2).astype(bool)
    used = tuple(
        int(i) for i in np.sort(rng.choice(bits, size=bits - 2, replace=False))
    )
    return DeviceRecord(
        device_id=device_id,
        reference_bits=reference,
        helper_offset=offset,
        helper_salt=rng.integers(0, 256, size=8, dtype=np.uint8).tobytes(),
        used_bits=used,
        key_digest=hashlib.sha256(device_id.encode()).hexdigest(),
        enrolled_at="V=1.20V T=25C",
    )


def records_equal(a: DeviceRecord, b: DeviceRecord) -> bool:
    return (
        a.device_id == b.device_id
        and np.array_equal(a.reference_bits, b.reference_bits)
        and np.array_equal(a.helper_offset, b.helper_offset)
        and a.helper_salt == b.helper_salt
        and a.used_bits == b.used_bits
        and a.key_digest == b.key_digest
        and a.enrolled_at == b.enrolled_at
    )


class TestDeviceRecord:
    def test_payload_round_trip(self):
        record = make_record("board-00")
        rebuilt = DeviceRecord.from_payload(
            json.loads(json.dumps(record.to_payload()))
        )
        assert records_equal(record, rebuilt)

    def test_helper_round_trips_through_payload(self):
        record = make_record("board-00")
        rebuilt = DeviceRecord.from_payload(record.to_payload())
        helper = rebuilt.helper()
        assert np.array_equal(helper.offset, record.helper_offset)
        assert helper.salt == record.helper_salt

    def test_matches_key(self):
        record = make_record("board-00")
        assert record.matches_key(b"board-00")
        assert not record.matches_key(b"board-01")

    def test_rejects_empty_device_id(self):
        with pytest.raises(ValueError, match="device_id"):
            make_record("")

    def test_rejects_out_of_range_used_bits(self):
        record = make_record("board-00")
        with pytest.raises(ValueError, match="used_bits"):
            DeviceRecord(
                device_id="x",
                reference_bits=record.reference_bits,
                helper_offset=record.helper_offset,
                helper_salt=record.helper_salt,
                used_bits=(0, len(record.reference_bits)),
                key_digest=record.key_digest,
                enrolled_at=record.enrolled_at,
            )

    def test_rejects_empty_reference(self):
        with pytest.raises(ValueError, match="reference_bits"):
            DeviceRecord(
                device_id="x",
                reference_bits=np.array([], dtype=bool),
                helper_offset=np.array([True]),
                helper_salt=b"s",
                used_bits=(),
                key_digest="d",
                enrolled_at="nominal",
            )


class TestInMemoryStore:
    def test_enroll_get_len(self):
        store = CRPStore(None)
        record = make_record("board-00")
        store.enroll(record)
        assert len(store) == 1
        assert "board-00" in store
        assert records_equal(store.get("board-00"), record)

    def test_duplicate_enroll_rejected(self):
        store = CRPStore(None)
        store.enroll(make_record("board-00"))
        with pytest.raises(ValueError, match="already enrolled"):
            store.enroll(make_record("board-00", seed=1))

    def test_evict_then_reenroll(self):
        store = CRPStore(None)
        store.enroll(make_record("board-00"))
        store.evict("board-00")
        assert "board-00" not in store
        store.enroll(make_record("board-00", seed=2))  # now allowed

    def test_evict_missing_raises(self):
        store = CRPStore(None)
        with pytest.raises(KeyError):
            store.evict("ghost")

    def test_stats_track_hits_and_misses(self):
        store = CRPStore(None)
        store.enroll(make_record("board-00"))
        store.get("board-00")
        store.get("board-00")
        store.get("nobody")
        stats = store.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["devices"] == 1

    def test_compact_is_a_noop_in_memory(self):
        store = CRPStore(None)
        store.enroll(make_record("board-00"))
        store.evict("board-00")
        store.compact()
        assert store.stats()["tombstones"] == 0


class TestPersistentStore:
    def test_reopen_restores_records(self, tmp_path):
        path = tmp_path / "crp.jsonl"
        original = [make_record(f"board-{i:02d}") for i in range(3)]
        store = CRPStore(path)
        for record in original:
            store.enroll(record)
        reopened = CRPStore(path)
        assert reopened.device_ids == [r.device_id for r in original]
        for record in original:
            assert records_equal(reopened.get(record.device_id), record)

    def test_eviction_survives_reopen(self, tmp_path):
        path = tmp_path / "crp.jsonl"
        store = CRPStore(path)
        store.enroll(make_record("board-00"))
        store.enroll(make_record("board-01"))
        store.evict("board-00")
        reopened = CRPStore(path)
        assert reopened.device_ids == ["board-01"]

    def test_crash_mid_append_tail_is_repaired(self, tmp_path):
        path = tmp_path / "crp.jsonl"
        store = CRPStore(path)
        store.enroll(make_record("board-00"))
        store.enroll(make_record("board-01"))
        intact_size = path.stat().st_size
        # Simulate dying halfway through the third append.
        with open(path, "ab") as handle:
            handle.write(b'{"scheme":"ropuf-crp-v1","kind":"enr')
        reopened = CRPStore(path)
        assert reopened.device_ids == ["board-00", "board-01"]
        # The file was truncated back to the last intact record ...
        assert path.stat().st_size == intact_size
        # ... so appends continue on a clean seam.
        reopened.enroll(make_record("board-02"))
        assert CRPStore(path).device_ids == [
            "board-00",
            "board-01",
            "board-02",
        ]

    def test_garbage_tail_is_discarded(self, tmp_path):
        path = tmp_path / "crp.jsonl"
        store = CRPStore(path)
        store.enroll(make_record("board-00"))
        with open(path, "ab") as handle:
            handle.write(b"\x00\xffnot json\n" + b"more garbage")
        reopened = CRPStore(path)
        assert reopened.device_ids == ["board-00"]
        assert b"garbage" not in path.read_bytes()

    def test_foreign_scheme_stops_replay(self, tmp_path):
        path = tmp_path / "crp.jsonl"
        store = CRPStore(path)
        store.enroll(make_record("board-00"))
        alien = json.dumps(
            {"scheme": "somebody-else-v9", "kind": "enroll", "device": {}}
        )
        with open(path, "a") as handle:
            handle.write(alien + "\n")
        store.enroll(make_record("board-01"))  # appended after the alien line
        reopened = CRPStore(path)
        # Replay stops at the first foreign record: only board-00 survives.
        assert reopened.device_ids == ["board-00"]

    def test_missing_file_is_an_empty_store(self, tmp_path):
        store = CRPStore(tmp_path / "never-written.jsonl")
        assert len(store) == 0

    def test_compact_drops_tombstones(self, tmp_path):
        path = tmp_path / "crp.jsonl"
        store = CRPStore(path)
        for i in range(3):
            store.enroll(make_record(f"board-{i:02d}"))
        store.evict("board-01")
        assert store.stats()["tombstones"] == 1
        size_before = path.stat().st_size
        store.compact()
        assert path.stat().st_size < size_before
        assert store.stats()["tombstones"] == 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["kind"] == "enroll" for line in lines)
        assert CRPStore(path).device_ids == ["board-00", "board-02"]

    def test_parent_directories_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "crp.jsonl"
        store = CRPStore(path)
        store.enroll(make_record("board-00"))
        assert path.exists()


# ----------------------------------------------------------------------
# Property test: arbitrary op sequences against a dict model
# ----------------------------------------------------------------------

_DEVICES = [f"dev-{i}" for i in range(4)]
_counter = itertools.count()


@pytest.fixture(scope="module")
def prop_dir(tmp_path_factory):
    """Module-scoped scratch dir: Hypothesis examples pick unique files."""
    return tmp_path_factory.mktemp("store-props")

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("enroll"), st.sampled_from(_DEVICES)),
        st.tuples(st.just("evict"), st.sampled_from(_DEVICES)),
        st.tuples(st.just("lookup"), st.sampled_from(_DEVICES)),
        st.tuples(st.just("reopen"), st.none()),
        st.tuples(st.just("compact"), st.none()),
    ),
    max_size=25,
)


class TestStoreProperties:
    @given(ops=_ops)
    def test_store_always_agrees_with_model(self, ops, prop_dir):
        # The fixture is per-test, not per-example: give each example its
        # own journal file.
        path = prop_dir / f"store-{next(_counter)}.jsonl"
        store = CRPStore(path)
        model: dict[str, DeviceRecord] = {}
        generation = 0
        for verb, device in ops:
            if verb == "enroll":
                generation += 1
                record = make_record(device, seed=generation)
                if device in model:
                    with pytest.raises(ValueError):
                        store.enroll(record)
                else:
                    store.enroll(record)
                    model[device] = record
            elif verb == "evict":
                if device in model:
                    store.evict(device)
                    del model[device]
                else:
                    with pytest.raises(KeyError):
                        store.evict(device)
            elif verb == "lookup":
                found = store.get(device)
                if device in model:
                    # Never another device's CRPs, never a stale generation.
                    assert found is not None
                    assert found.device_id == device
                    assert records_equal(found, model[device])
                else:
                    assert found is None
            elif verb == "compact":
                store.compact()
            else:  # reopen: durability across a clean restart
                store = CRPStore(path)
            assert sorted(store.device_ids) == sorted(model)
            assert len(store) == len(model)
        # Final reopen: everything acknowledged is still there, intact.
        final = CRPStore(path)
        assert sorted(final.device_ids) == sorted(model)
        for device, expected in model.items():
            assert records_equal(final.get(device), expected)

    @given(cut=st.integers(min_value=1, max_value=40))
    def test_arbitrary_tail_truncation_never_corrupts(self, cut, prop_dir):
        # Chop an arbitrary number of bytes off the journal: the reopened
        # store must hold an exact prefix of the enrolled records.
        path = prop_dir / f"cut-{next(_counter)}.jsonl"
        store = CRPStore(path)
        enrolled = [f"dev-{i}" for i in range(3)]
        for device in enrolled:
            store.enroll(make_record(device))
        raw = path.read_bytes()
        path.write_bytes(raw[: max(0, len(raw) - cut)])
        survivors = CRPStore(path).device_ids
        assert survivors == enrolled[: len(survivors)]
