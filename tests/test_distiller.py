"""Unit tests of the regression-based distiller."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distiller.regression import MeanDistiller, PolynomialDistiller
from repro.variation.process import polynomial_design_matrix


def grid_coords(k=100):
    rng = np.random.default_rng(0)
    return rng.uniform(-1.0, 1.0, (k, 2))


class TestPolynomialDistiller:
    def test_removes_injected_polynomial_trend(self):
        coords = grid_coords(500)
        rng = np.random.default_rng(1)
        random_part = rng.normal(0.0, 0.01, len(coords))
        design = polynomial_design_matrix(coords, 2)
        trend = design @ np.array([0.1, -0.05, 0.02, 0.03, -0.01])
        delays = 1.0 + trend + random_part
        distilled = PolynomialDistiller(degree=2)(delays, coords)
        # Residuals match the random part up to the random part's own
        # projection onto the 6-dimensional polynomial basis (~6/500 of
        # its variance), so correlation must be near 1 and far above the
        # raw delays' correlation.
        correlation = np.corrcoef(distilled, random_part)[0, 1]
        assert correlation > 0.99
        assert correlation > np.corrcoef(delays, random_part)[0, 1]

    def test_fit_of_pure_trend_is_exact(self):
        coords = grid_coords()
        design = polynomial_design_matrix(coords, 2)
        trend = design @ np.array([0.2, 0.1, -0.3, 0.05, 0.15])
        delays = 5.0 + trend
        result = PolynomialDistiller(degree=2).distill(delays, coords)
        assert np.allclose(result.fitted, delays, atol=1e-9)
        assert np.allclose(result.distilled, np.mean(delays), atol=1e-9)

    def test_keep_mean_restores_scale(self):
        coords = grid_coords()
        delays = np.full(len(coords), 7.0)
        distilled = PolynomialDistiller(degree=2, keep_mean=True)(delays, coords)
        assert np.allclose(distilled, 7.0)

    def test_keep_mean_false_centres_output(self):
        coords = grid_coords()
        rng = np.random.default_rng(2)
        delays = 3.0 + rng.normal(0, 0.01, len(coords))
        distilled = PolynomialDistiller(degree=2, keep_mean=False)(delays, coords)
        assert abs(np.mean(distilled)) < 1e-10

    def test_higher_degree_removes_more(self):
        coords = grid_coords(400)
        rng = np.random.default_rng(3)
        design = polynomial_design_matrix(coords, 3)
        trend = design @ rng.normal(0.0, 0.1, design.shape[1])
        delays = 1.0 + trend + rng.normal(0, 0.001, len(coords))
        low = PolynomialDistiller(degree=1, keep_mean=False)(delays, coords)
        high = PolynomialDistiller(degree=3, keep_mean=False)(delays, coords)
        assert np.std(high) < np.std(low)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            PolynomialDistiller(degree=0)

    def test_shape_validation(self):
        distiller = PolynomialDistiller()
        with pytest.raises(ValueError, match="1-D"):
            distiller.distill(np.ones((3, 2)), grid_coords(3))
        with pytest.raises(ValueError, match="coords"):
            distiller.distill(np.ones(5), grid_coords(4))

    def test_coefficients_include_intercept(self):
        coords = grid_coords()
        delays = np.full(len(coords), 2.5)
        result = PolynomialDistiller(degree=2).distill(delays, coords)
        assert result.coefficients[0] == pytest.approx(2.5)
        assert np.allclose(result.coefficients[1:], 0.0, atol=1e-9)

    @given(st.floats(0.5, 2.0), st.floats(-0.2, 0.2))
    def test_affine_invariance_of_residual_shape(self, scale, offset):
        coords = grid_coords(50)
        rng = np.random.default_rng(4)
        delays = 1.0 + rng.normal(0, 0.02, 50)
        base = PolynomialDistiller(degree=2, keep_mean=False)(delays, coords)
        transformed = PolynomialDistiller(degree=2, keep_mean=False)(
            scale * delays + offset, coords
        )
        assert np.allclose(transformed, scale * base, atol=1e-9)


class TestMeanDistiller:
    def test_removes_mean_only(self):
        coords = grid_coords(10)
        delays = np.arange(10.0)
        result = MeanDistiller().distill(delays, coords)
        assert np.mean(result.distilled) == pytest.approx(0.0)
        assert np.allclose(result.distilled, delays - np.mean(delays))

    def test_preserves_spatial_trend(self):
        coords = grid_coords(100)
        trend = coords[:, 0] * 0.5
        distilled = MeanDistiller()(1.0 + trend, coords)
        assert np.corrcoef(distilled, trend)[0, 1] > 0.999

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            MeanDistiller().distill(np.ones((2, 2)), grid_coords(2))
