"""Tests of the battery runner and the multi-sequence final report."""

import numpy as np
import pytest

from repro.nist.common import ALPHA, TestOutcome
from repro.nist.suite import (
    SuiteConfig,
    evaluate_sequences,
    minimum_pass_proportion,
    run_battery,
)


class TestTestOutcome:
    def test_pass_threshold(self):
        assert TestOutcome(test="T", p_value=ALPHA, statistic=0.0).passed
        assert not TestOutcome(test="T", p_value=ALPHA / 2, statistic=0.0).passed

    def test_label_includes_variant(self):
        outcome = TestOutcome(test="Serial", p_value=0.5, statistic=0.0, variant="d2")
        assert outcome.label == "Serial (d2)"

    def test_p_value_clamped(self):
        outcome = TestOutcome(test="T", p_value=1.0 + 1e-12, statistic=0.0)
        assert outcome.p_value == 1.0

    def test_invalid_p_value_rejected(self):
        with pytest.raises(ValueError):
            TestOutcome(test="T", p_value=1.5, statistic=0.0)
        with pytest.raises(ValueError):
            TestOutcome(test="T", p_value=float("nan"), statistic=0.0)


class TestMinimumPassProportion:
    def test_paper_quote_97_sequences(self):
        # "approximately = 93 for a sample size = 97 binary sequences"
        threshold = minimum_pass_proportion(97)
        assert int(np.floor(threshold * 97)) == 93

    def test_shrinks_with_sample_size(self):
        assert minimum_pass_proportion(1000) > minimum_pass_proportion(50)

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_pass_proportion(0)


class TestRunBattery:
    def test_short_sequence_battery(self, rng):
        bits = rng.integers(0, 2, 96).astype(bool)
        outcomes, skipped = run_battery(bits)
        labels = {o.test for o in outcomes}
        assert "Frequency" in labels
        assert "Runs" in labels
        assert "Serial" in labels
        assert "Rank" in skipped
        assert "Universal" in skipped
        assert "DFT" in skipped  # gated below 1000 bits

    def test_long_sequence_battery_widens(self, rng):
        bits = rng.integers(0, 2, 50000).astype(bool)
        outcomes, skipped = run_battery(bits)
        labels = {o.test for o in outcomes}
        assert {"LongestRun", "Rank", "DFT", "NonOverlappingTemplate"} <= labels
        assert "Universal" in skipped

    def test_config_overrides(self, rng):
        bits = rng.integers(0, 2, 4096).astype(bool)
        config = SuiteConfig(
            block_frequency_block_size=64,
            serial_m=4,
            template_length=3,
            max_templates=2,
        )
        outcomes, _ = run_battery(bits, config)
        block = next(o for o in outcomes if o.test == "BlockFrequency")
        assert block.details["block_size"] == 64
        templates = [o for o in outcomes if o.test == "NonOverlappingTemplate"]
        assert len(templates) == 2


class TestEvaluateSequences:
    def test_report_shape(self, rng):
        sequences = rng.integers(0, 2, (60, 96)).astype(bool)
        report = evaluate_sequences(sequences)
        assert report.sequence_count == 60
        assert report.bit_count == 96
        assert all(row.sample_size == 60 for row in report.rows)
        assert all(row.histogram.sum() == 60 for row in report.rows)

    def test_random_sequences_pass(self, rng):
        sequences = rng.integers(0, 2, (97, 96)).astype(bool)
        report = evaluate_sequences(sequences)
        assert report.all_passed, [r.label for r in report.failed_rows]

    def test_biased_sequences_fail(self, rng):
        # 80% ones: frequency proportions collapse.
        sequences = (rng.random((97, 96)) < 0.8)
        report = evaluate_sequences(sequences)
        assert not report.all_passed
        frequency_row = next(r for r in report.rows if r.label == "Frequency")
        assert not frequency_row.proportion_ok

    def test_correlated_sequences_fail(self, rng):
        # Runs of 8 identical bits: the runs test must collapse.
        base = rng.integers(0, 2, (97, 12))
        sequences = np.repeat(base, 8, axis=1).astype(bool)
        report = evaluate_sequences(sequences)
        runs_row = next(r for r in report.rows if r.label == "Runs")
        assert not runs_row.proportion_ok

    def test_render_contains_paper_phrases(self, rng):
        sequences = rng.integers(0, 2, (97, 96)).astype(bool)
        text = evaluate_sequences(sequences).render()
        assert "P-VALUE" in text and "PROPORTION" in text
        assert "minimum pass rate" in text
        assert "sample size = 97" in text

    def test_discrete_support_flagged(self, rng):
        sequences = rng.integers(0, 2, (97, 96)).astype(bool)
        report = evaluate_sequences(sequences)
        frequency_row = next(r for r in report.rows if r.label == "Frequency")
        # 96-bit monobit p-values have a ~25-atom support: not assessable.
        assert not frequency_row.uniformity_assessable

    def test_continuous_support_assessed(self, rng):
        sequences = rng.integers(0, 2, (60, 4096)).astype(bool)
        report = evaluate_sequences(sequences)
        runs_row = next(r for r in report.rows if r.label == "Runs")
        assert runs_row.uniformity_assessable

    def test_input_validation(self):
        with pytest.raises(ValueError):
            evaluate_sequences(np.zeros((0, 96), dtype=bool))
        with pytest.raises(ValueError):
            evaluate_sequences(np.zeros(96, dtype=bool))
