"""Integration tests of the experiment modules at reduced scale.

Full paper-scale runs live in benchmarks/; here every experiment is
exercised on the small session dataset to validate plumbing and the
qualitative result shape.
"""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_measurement_noise_ablation,
    run_selector_ablation,
)
from repro.experiments.common import (
    PipelineConfig,
    board_enrollment,
    board_puf,
    combine_streams,
    response_matrix,
)
from repro.experiments.config_tables import format_result as format_config
from repro.experiments.config_tables import run_config_study
from repro.experiments.fig3_uniqueness import (
    format_result as format_uniqueness,
)
from repro.experiments.fig3_uniqueness import run_uniqueness_experiment
from repro.experiments.fig4_reliability import (
    format_result as format_reliability,
)
from repro.experiments.fig4_reliability import (
    run_temperature_reliability,
    run_voltage_reliability,
)
from repro.experiments.nist_tables import nist_streams, run_nist_experiment
from repro.experiments.sec4e_threshold import run_threshold_study
from repro.experiments.table5_bits import PAPER_TABLE5, run_table5
from repro.datasets.inhouse import InHouseConfig, generate_inhouse_boards


class TestPipeline:
    def test_board_puf_bit_counts(self, small_dataset):
        config = PipelineConfig(stage_count=4)
        puf = board_puf(small_dataset.boards[0], config)
        # 128 ROs, n=4 -> 32 rings -> 16 bits
        assert puf.bit_count == 16

    def test_enrollment_runs(self, small_dataset):
        config = PipelineConfig(stage_count=4)
        enrollment = board_enrollment(small_dataset.boards[0], config)
        assert enrollment.bit_count == 16

    def test_distilled_and_raw_differ(self, small_dataset):
        board = small_dataset.nominal_boards[0]
        raw = board_enrollment(board, PipelineConfig(stage_count=4, distill=False))
        distilled = board_enrollment(
            board, PipelineConfig(stage_count=4, distill=True)
        )
        assert not np.array_equal(raw.bits, distilled.bits)

    def test_response_matrix_shape(self, small_dataset):
        config = PipelineConfig(stage_count=4)
        matrix = response_matrix(
            small_dataset.nominal_boards, config, small_dataset.nominal
        )
        assert matrix.shape == (8, 16)

    def test_combine_streams(self):
        bits = np.arange(24).reshape(6, 4) % 2 == 0
        combined = combine_streams(bits, 2)
        assert combined.shape == (3, 8)
        assert np.array_equal(combined[0, :4], bits[0])
        assert np.array_equal(combined[0, 4:], bits[1])

    def test_combine_streams_drops_leftover(self):
        bits = np.zeros((5, 4), dtype=bool)
        assert combine_streams(bits, 2).shape == (2, 8)

    def test_oversized_rings_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="no"):
            board_puf(small_dataset.boards[0], PipelineConfig(stage_count=100))


class TestNistExperiment:
    def test_distilled_passes_small(self, small_dataset):
        result = run_nist_experiment(small_dataset, method="case1")
        # 8 nominal boards, n=5 -> 8 bits/board -> 4 streams of 16 bits:
        # tiny sample, so only check plumbing + stream shape.
        assert result.streams.shape == (4, 16)
        assert result.report.sequence_count == 4

    def test_raw_streams_differ_from_distilled(self, small_dataset):
        raw = nist_streams(small_dataset, distilled=False)
        distilled = nist_streams(small_dataset, distilled=True)
        assert raw.shape == distilled.shape
        assert not np.array_equal(raw, distilled)

    def test_bit_sign_identity_without_parity_constraint(self, small_dataset):
        # The bit-sign identity (see DESIGN.md): without the odd-count
        # constraint, case1, case2 and traditional yield identical bits
        # (only margins differ).  With require_odd, near-tie pairs may
        # diverge, so the experiments' streams are allowed to differ there.
        matrices = {}
        for method in ("case1", "case2", "traditional"):
            config = PipelineConfig(
                stage_count=5, method=method, require_odd=False
            )
            matrices[method] = response_matrix(
                small_dataset.nominal_boards, config, small_dataset.nominal
            )
        assert np.array_equal(matrices["case1"], matrices["case2"])
        assert np.array_equal(matrices["case1"], matrices["traditional"])

    def test_case1_case2_streams_nearly_identical(self, small_dataset):
        c1 = nist_streams(small_dataset, method="case1")
        c2 = nist_streams(small_dataset, method="case2")
        assert np.mean(c1 != c2) < 0.05


class TestUniquenessExperiment:
    def test_reports_shape(self, small_dataset):
        result = run_uniqueness_experiment(small_dataset)
        assert result.case1.stream_count == 4
        assert result.case1.bit_count == 16
        assert 0 <= result.case1.uniqueness_percent <= 100

    def test_format_contains_paper_reference(self, small_dataset):
        text = format_uniqueness(run_uniqueness_experiment(small_dataset))
        assert "46.88" in text and "46.79" in text


class TestConfigStudy:
    def test_case1_vector_width(self, small_dataset):
        result = run_config_study(small_dataset, method="case1", stage_count=8)
        assert result.vectors.shape[1] == 8

    def test_case2_concatenated_width(self, small_dataset):
        result = run_config_study(small_dataset, method="case2", stage_count=8)
        assert result.vectors.shape[1] == 16

    def test_all_even_hamming_distances(self, small_dataset):
        # require_odd forces equal-parity weights -> even pairwise HDs.
        result = run_config_study(small_dataset, method="case1", stage_count=8)
        assert result.odd_hd_pairs == 0

    def test_selected_fraction_near_half(self, small_dataset):
        result = run_config_study(small_dataset, method="case1", stage_count=8)
        assert 0.3 < result.mean_selected_fraction < 0.8

    def test_format_renders_table(self, small_dataset):
        text = format_config(run_config_study(small_dataset, stage_count=8))
        assert "HD" in text and "conjecture" in text


class TestReliabilityExperiments:
    def test_voltage_structure(self, small_dataset):
        result = run_voltage_reliability(small_dataset, stage_counts=(3, 5))
        assert len(result.subplots) == 2 * 2  # 2 swept boards x 2 ns
        subplot = result.subplots[0]
        assert len(subplot.configurable_flip_percent) == 5
        assert subplot.bit_count > 0

    def test_configurable_beats_traditional_on_average(self, small_dataset):
        result = run_voltage_reliability(small_dataset, stage_counts=(5,))
        assert result.mean_configurable_flips(5) <= result.mean_traditional_flips(5)

    def test_one_of_8_never_flips(self, small_dataset):
        result = run_voltage_reliability(small_dataset, stage_counts=(3, 5))
        assert result.max_one_of_8_flips() == 0.0

    def test_temperature_configurable_stable(self, small_dataset):
        result = run_temperature_reliability(small_dataset, stage_counts=(5,))
        assert result.mean_configurable_flips(5) <= result.mean_traditional_flips(5)

    def test_subplot_lookup(self, small_dataset):
        result = run_voltage_reliability(small_dataset, stage_counts=(3,))
        name = small_dataset.swept_boards[0].name
        subplot = result.subplot(name, 3)
        assert subplot.board == name
        with pytest.raises(KeyError):
            result.subplot("ghost", 3)

    def test_format_renders(self, small_dataset):
        result = run_voltage_reliability(small_dataset, stage_counts=(3,))
        text = format_reliability(result)
        assert "traditional" in text and "1-of-8" in text


class TestTable5:
    def test_matches_paper_exactly(self):
        rows = run_table5()
        for row in rows:
            expected = PAPER_TABLE5[row.stage_count]
            assert (
                row.configurable_bits,
                row.traditional_bits,
                row.one_of_8_bits,
            ) == expected
            assert row.hardware_advantage == pytest.approx(4.0)


class TestThresholdStudy:
    def test_shape_of_tradeoff(self):
        boards = tuple(
            generate_inhouse_boards(
                InHouseConfig(board_count=2, unit_count=256, seed=3)
            )
        )
        result = run_threshold_study(
            boards=boards, stage_count=4, thresholds_units=np.array([0.0, 3.0])
        )
        assert result.traditional[0] == result.total_bits
        assert result.configurable[0] == result.total_bits
        # at the calibrated R_th = 3 the configurable keeps more bits
        assert result.configurable[1] > result.traditional[1]

    def test_calibration_hits_paper_point(self):
        boards = tuple(
            generate_inhouse_boards(
                InHouseConfig(board_count=2, unit_count=256, seed=3)
            )
        )
        result = run_threshold_study(
            boards=boards, stage_count=4, thresholds_units=np.array([3.0])
        )
        # calibrated so traditional keeps ~13/32 = 40.6% at R_th = 3
        fraction = result.traditional[0] / result.total_bits
        assert 0.25 < fraction < 0.55


class TestAblations:
    def test_selector_margins_ordering(self, small_dataset):
        result = run_selector_ablation(small_dataset, stage_count=5, max_boards=6)
        assert result.mean_abs_margin["case2"] >= result.mean_abs_margin["case1"]
        assert result.mean_abs_margin["case1"] > result.mean_abs_margin["traditional"]
        assert result.bit_disagreements == 0

    def test_noise_ablation_monotone_in_repeats(self):
        result = run_measurement_noise_ablation(
            noise_sigmas=(1e-3,), repeats=(1, 16), pair_count=8, stage_count=5
        )
        assert (
            result.ddiff_rms_error[(1e-3, 16)]
            < result.ddiff_rms_error[(1e-3, 1)]
        )
