"""Regression tests: every shipped example must run cleanly.

Each example is executed as a subprocess (the way a user runs it) with a
generous timeout; key lines of its output are checked so the examples stay
truthful as the library evolves.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "fabricated" in output
        assert "[case2] enrolled 16 bits" in output
        assert "bit flip(s) of 16" in output

    def test_key_generation(self):
        output = run_example("key_generation.py")
        assert "[case2] enrolled key:" in output
        assert "0 decode failures, 0 wrong keys" in output

    def test_authentication(self):
        output = run_example("authentication.py")
        assert "genuine accepted: 8/8" in output
        assert "counterfeits rejected: 56/56" in output

    def test_reliability_study(self):
        output = run_example("reliability_study.py", "3")
        assert "case1" in output and "1-out-of-8" in output

    def test_aging_study(self):
        output = run_example("aging_study.py", "10")
        assert "traditional" in output and "case2" in output

    def test_attack_analysis(self):
        output = run_example("attack_analysis.py")
        assert "unconstrained" in output
        assert "equal-count constraint" in output

    def test_dataset_tour(self):
        output = run_example("dataset_tour.py")
        assert "raw delays" in output
        assert "regression distiller" in output

    def test_provisioning_flow(self):
        output = run_example("provisioning_flow.py")
        assert "all devices verified" in output
        assert "key MATCH" in output

    def test_load_test(self):
        output = run_example("load_test.py", "12", "2")
        assert "zero failures across 24 requests" in output

    def test_randomness_audit_raw_fails(self):
        output = run_example("randomness_audit.py", "--raw")
        assert "FAIL" in output
        assert "expected to FAIL" in output
