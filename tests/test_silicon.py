"""Unit tests of the silicon substrate: geometry, chips, fabrication."""

import numpy as np
import pytest

from repro.silicon.chip import Chip
from repro.silicon.fabrication import FabricationProcess
from repro.silicon.geometry import GridPlacement, grid_coordinates
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint


class TestGeometry:
    def test_coordinates_cover_unit_square(self):
        coords = grid_coordinates(4, 4)
        assert coords.min() == -1.0 and coords.max() == 1.0
        assert coords.shape == (16, 2)

    def test_single_row_centred(self):
        coords = grid_coordinates(3, 1)
        assert np.all(coords[:, 1] == 0.0)

    def test_row_major_order(self):
        coords = grid_coordinates(2, 2)
        # first two entries share y (first row), x increases
        assert coords[0, 1] == coords[1, 1]
        assert coords[0, 0] < coords[1, 0]

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            grid_coordinates(0, 5)

    def test_placement_capacity(self):
        placement = GridPlacement(columns=4, rows=8)
        assert placement.capacity == 32
        assert placement.coordinates(10).shape == (10, 2)

    def test_placement_overflow_rejected(self):
        with pytest.raises(ValueError, match="cannot place"):
            GridPlacement(columns=2, rows=2).coordinates(5)

    def test_placement_rejects_degenerate(self):
        with pytest.raises(ValueError):
            GridPlacement(columns=0, rows=1)


class TestFabrication:
    def test_chip_unit_count(self, chip):
        assert chip.unit_count == 64
        assert len(chip) == 64

    def test_chips_differ(self):
        fab = FabricationProcess()
        rng = np.random.default_rng(0)
        a = fab.fabricate(32, rng, name="a")
        b = fab.fabricate(32, rng, name="b")
        # Compare relatively; the absolute scale (~5e-10 s) is far below
        # allclose's default atol.
        assert np.max(np.abs(a.inverter_base / b.inverter_base - 1.0)) > 1e-3

    def test_same_seed_same_chip(self):
        fab = FabricationProcess()
        a = fab.fabricate(32, np.random.default_rng(7))
        b = fab.fabricate(32, np.random.default_rng(7))
        assert np.array_equal(a.inverter_base, b.inverter_base)
        assert np.array_equal(a.mux_bypass_base, b.mux_bypass_base)

    def test_lot_naming(self):
        fab = FabricationProcess()
        lot = fab.fabricate_lot(3, 8, np.random.default_rng(1), name_prefix="b")
        assert [c.name for c in lot] == ["b00", "b01", "b02"]

    def test_mux_delay_ratio_respected(self, chip):
        ratio = np.mean(chip.mux_bypass_base) / np.mean(chip.inverter_base)
        assert 0.3 < ratio < 0.5  # default mux_delay_ratio = 0.4

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FabricationProcess(mux_delay_ratio=0.0)
        with pytest.raises(ValueError):
            FabricationProcess(mux_variation_scale=-1.0)
        with pytest.raises(ValueError):
            FabricationProcess().fabricate(0, np.random.default_rng(0))


class TestChip:
    def test_all_delays_positive(self, chip):
        for op in (NOMINAL_OPERATING_POINT, OperatingPoint(0.98, 65.0)):
            assert np.all(chip.inverter_delays(op) > 0)
            assert np.all(chip.mux_selected_delays(op) > 0)
            assert np.all(chip.mux_bypass_delays(op) > 0)

    def test_ddiff_definition(self, chip):
        op = OperatingPoint(1.32, 35.0)
        expected = (
            chip.inverter_delays(op)
            + chip.mux_selected_delays(op)
            - chip.mux_bypass_delays(op)
        )
        assert np.allclose(chip.ddiffs(op), expected)

    def test_low_voltage_slows_chip(self, chip):
        slow = chip.inverter_delays(OperatingPoint(0.98, 25.0))
        nominal = chip.inverter_delays(NOMINAL_OPERATING_POINT)
        assert np.all(slow > nominal)

    def test_subset_preserves_delays(self, chip):
        indices = np.array([3, 7, 11])
        sub = chip.subset(indices, name="sub")
        assert sub.unit_count == 3
        assert np.array_equal(sub.inverter_base, chip.inverter_base[indices])
        op = OperatingPoint(1.44, 45.0)
        assert np.allclose(sub.ddiffs(op), chip.ddiffs(op)[indices])

    def test_validation_rejects_inconsistent_arrays(self, chip):
        with pytest.raises(ValueError):
            Chip(
                name="bad",
                coords=chip.coords[:10],
                inverter_base=chip.inverter_base,
                mux_selected_base=chip.mux_selected_base,
                mux_bypass_base=chip.mux_bypass_base,
                inverter_sensitivities=chip.inverter_sensitivities,
                mux_selected_sensitivities=chip.mux_selected_sensitivities,
                mux_bypass_sensitivities=chip.mux_bypass_sensitivities,
            )

    def test_validation_rejects_non_positive_delays(self, chip):
        bad = chip.inverter_base.copy()
        bad[0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            Chip(
                name="bad",
                coords=chip.coords,
                inverter_base=bad,
                mux_selected_base=chip.mux_selected_base,
                mux_bypass_base=chip.mux_bypass_base,
                inverter_sensitivities=chip.inverter_sensitivities,
                mux_selected_sensitivities=chip.mux_selected_sensitivities,
                mux_bypass_sensitivities=chip.mux_bypass_sensitivities,
            )
