"""Challenge lifecycle of :class:`repro.serve.service.AuthService`.

A long-running verifier issues challenges that clients may never answer,
so the pending-challenge table must be bounded two ways: a TTL (expired
challenges are rejected exactly like unknown ones — no information leak
about whether an id was ever issued) and a max-pending cap with
oldest-first eviction.  Both are pinned here against the transport-free
``handle`` interface.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve import AuthService, CRPStore, DeviceFarm, FleetConfig
from repro.serve.protocol import encode_bits


@pytest.fixture()
def farm() -> DeviceFarm:
    return DeviceFarm.from_config(FleetConfig(boards=2))


def make_service(farm, **overrides) -> AuthService:
    service = AuthService(farm, CRPStore(None), **overrides)
    service.enroll_fleet()
    return service


def issue(service: AuthService, device_id: str) -> dict:
    response = service.handle({"op": "challenge", "device": device_id})
    assert response["ok"] is True
    return response


def perfect_answer(service: AuthService, device_id: str, indices) -> str:
    """The stored reference bits at the challenged indices (distance 0)."""
    record = service.store.get(device_id)
    return encode_bits(record.reference_bits[np.array(indices)])


def answer(service: AuthService, device_id: str, challenge: dict) -> dict:
    return service.handle(
        {
            "op": "auth",
            "device": device_id,
            "challenge_id": challenge["challenge_id"],
            "answer": perfect_answer(service, device_id, challenge["indices"]),
        }
    )


def pending(service: AuthService) -> int:
    return service.handle({"op": "stats"})["stats"]["challenges"]["pending"]


class TestChallengeTTL:
    def test_fresh_challenge_accepts_perfect_answer(self, farm):
        service = make_service(farm)
        try:
            device_id = farm.device_ids[0]
            outcome = answer(service, device_id, issue(service, device_id))
            assert outcome["accepted"] is True
            assert outcome["distance"] == 0
        finally:
            service.close()

    def test_expired_challenge_rejected_like_unknown(self, farm):
        service = make_service(farm, challenge_ttl_s=0.02)
        try:
            device_id = farm.device_ids[0]
            challenge = issue(service, device_id)
            time.sleep(0.05)
            expired = answer(service, device_id, challenge)
            unknown = service.handle(
                {
                    "op": "auth",
                    "device": device_id,
                    "challenge_id": "f" * 32,
                    "answer": perfect_answer(
                        service, device_id, challenge["indices"]
                    ),
                }
            )
            # Byte-for-byte identical rejections: a client cannot tell an
            # expired id from one that was never issued.
            assert expired == unknown
            assert expired["accepted"] is False
            counts = service.handle({"op": "stats"})["stats"]["service"]
            assert counts["challenges.expired"] == 1
        finally:
            service.close()

    def test_expired_challenges_swept_on_next_issue(self, farm):
        service = make_service(farm, challenge_ttl_s=0.02)
        try:
            device_id = farm.device_ids[0]
            for _ in range(3):
                issue(service, device_id)
            assert pending(service) == 3
            time.sleep(0.05)
            # Issuing a new challenge sweeps the stale ones out.
            issue(service, device_id)
            assert pending(service) == 1
            counts = service.handle({"op": "stats"})["stats"]["service"]
            assert counts["challenges.expired"] == 3
        finally:
            service.close()

    def test_answered_challenge_is_single_use(self, farm):
        service = make_service(farm)
        try:
            device_id = farm.device_ids[0]
            challenge = issue(service, device_id)
            assert answer(service, device_id, challenge)["accepted"] is True
            replay = answer(service, device_id, challenge)
            assert replay["accepted"] is False
            assert replay["reason"] == "unknown or already-used challenge"
        finally:
            service.close()


class TestMaxPendingEviction:
    def test_oldest_challenge_evicted_at_cap(self, farm):
        service = make_service(farm, max_pending_challenges=3)
        try:
            device_id = farm.device_ids[0]
            challenges = [issue(service, device_id) for _ in range(4)]
            assert pending(service) == 3
            # The first (oldest) challenge was evicted and now rejects...
            evicted = answer(service, device_id, challenges[0])
            assert evicted["accepted"] is False
            assert evicted["reason"] == "unknown or already-used challenge"
            # ... while the newest is intact and verifies.
            assert answer(service, device_id, challenges[-1])["accepted"]
            counts = service.handle({"op": "stats"})["stats"]["service"]
            assert counts["challenges.evicted"] == 1
        finally:
            service.close()

    def test_pending_table_stays_bounded(self, farm):
        service = make_service(farm, max_pending_challenges=8)
        try:
            device_id = farm.device_ids[0]
            for _ in range(50):
                issue(service, device_id)
            assert pending(service) == 8
        finally:
            service.close()

    def test_parameter_validation(self, farm):
        with pytest.raises(ValueError, match="challenge_ttl_s"):
            AuthService(farm, CRPStore(None), challenge_ttl_s=0.0)
        with pytest.raises(ValueError, match="max_pending_challenges"):
            AuthService(farm, CRPStore(None), max_pending_challenges=0)
