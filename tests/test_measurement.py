"""Unit tests of the Sec. III.B delay-measurement schemes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config_vector import ConfigVector
from repro.core.measurement import (
    DelayMeasurer,
    leave_one_out_vectors,
    measure_ddiffs_least_squares,
    measure_ddiffs_leave_one_out,
    random_config_set,
    three_stage_ddiffs,
)
from repro.core.ring import ConfigurableRO
from repro.variation.noise import GaussianNoise, NoiselessMeasurement


@pytest.fixture()
def ring(chip):
    return ConfigurableRO(chip=chip, unit_indices=np.arange(6))


def noiseless_measurer() -> DelayMeasurer:
    return DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)


class TestLeaveOneOutVectors:
    def test_structure(self):
        vectors = leave_one_out_vectors(3)
        assert [v.to_string() for v in vectors] == ["111", "011", "101", "110"]

    def test_count(self):
        assert len(leave_one_out_vectors(7)) == 8

    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError):
            leave_one_out_vectors(0)


class TestLeaveOneOutExtraction:
    def test_exact_at_zero_noise(self, ring):
        estimate = measure_ddiffs_leave_one_out(noiseless_measurer(), ring)
        assert np.allclose(estimate.ddiffs, ring.ddiffs(), rtol=1e-12)

    def test_noise_error_shrinks_with_repeats(self, ring):
        errors = []
        for repeats in (1, 64):
            measurer = DelayMeasurer(
                noise=GaussianNoise(relative_sigma=1e-3),
                repeats=repeats,
                rng=np.random.default_rng(0),
            )
            total = 0.0
            for trial in range(20):
                estimate = measure_ddiffs_leave_one_out(measurer, ring)
                total += float(np.mean(np.abs(estimate.ddiffs - ring.ddiffs())))
            errors.append(total / 20)
        assert errors[1] < errors[0] / 3.0

    def test_measurement_count(self, ring):
        estimate = measure_ddiffs_leave_one_out(noiseless_measurer(), ring)
        assert len(estimate.measurements) == ring.stage_count + 1
        assert len(estimate.configs) == ring.stage_count + 1


class TestLeastSquaresExtraction:
    def test_exact_with_loo_set(self, ring):
        configs = leave_one_out_vectors(ring.stage_count)
        estimate = measure_ddiffs_least_squares(
            noiseless_measurer(), ring, configs
        )
        assert np.allclose(estimate.ddiffs, ring.ddiffs(), rtol=1e-9)

    def test_recovers_intercept(self, ring):
        configs = leave_one_out_vectors(ring.stage_count)
        configs.append(ConfigVector.none_selected(ring.stage_count))
        estimate = measure_ddiffs_least_squares(
            noiseless_measurer(), ring, configs
        )
        expected_intercept = float(np.sum(ring.bypass_delays()))
        assert estimate.intercept == pytest.approx(expected_intercept, rel=1e-9)

    def test_residuals_zero_at_zero_noise(self, ring):
        configs = leave_one_out_vectors(ring.stage_count)
        estimate = measure_ddiffs_least_squares(
            noiseless_measurer(), ring, configs
        )
        assert estimate.residual_rms == pytest.approx(0.0, abs=1e-15)

    def test_rejects_too_few_configs(self, ring):
        with pytest.raises(ValueError, match="at least"):
            measure_ddiffs_least_squares(
                noiseless_measurer(), ring, leave_one_out_vectors(6)[:4]
            )

    def test_rejects_rank_deficient_set(self, ring):
        n = ring.stage_count
        same = [ConfigVector.all_selected(n)] * (n + 1)
        with pytest.raises(ValueError, match="rank"):
            measure_ddiffs_least_squares(noiseless_measurer(), ring, same)

    def test_extra_configs_reduce_noise(self, ring):
        n = ring.stage_count
        rng = np.random.default_rng(1)
        few = leave_one_out_vectors(n)
        many = few + random_config_set(n, 3 * n, np.random.default_rng(2))
        errors = []
        for configs in (few, many):
            measurer = DelayMeasurer(
                noise=GaussianNoise(relative_sigma=1e-3),
                repeats=1,
                rng=np.random.default_rng(3),
            )
            total = 0.0
            for _ in range(30):
                estimate = measure_ddiffs_least_squares(measurer, ring, configs)
                total += float(np.mean((estimate.ddiffs - ring.ddiffs()) ** 2))
            errors.append(total)
        assert errors[1] < errors[0]
        del rng


class TestThreeStageFormula:
    def test_paper_formulas(self):
        x, y, z = 10.0, 11.0, 12.0
        d1, d2, d3 = three_stage_ddiffs(x, y, z)
        assert d1 == pytest.approx((x + y - z) / 2)
        assert d2 == pytest.approx((x + z - y) / 2)
        assert d3 == pytest.approx((y + z - x) / 2)

    def test_consistency_with_zero_bypass(self):
        # With negligible bypass delays, D("110") = a1 + a2 etc., and the
        # formulas recover each a_i exactly.
        a = np.array([3.0, 4.0, 5.0])
        x = a[0] + a[1]
        y = a[0] + a[2]
        z = a[1] + a[2]
        assert np.allclose(three_stage_ddiffs(x, y, z), a)


class TestRandomConfigSet:
    @given(st.integers(2, 10))
    def test_full_rank(self, n):
        rng = np.random.default_rng(n)
        configs = random_config_set(n, min(n + 3, 2**n), rng)
        matrix = np.stack([c.as_array().astype(float) for c in configs])
        design = np.column_stack([np.ones(len(configs)), matrix])
        assert np.linalg.matrix_rank(design) == n + 1

    def test_no_duplicates(self):
        configs = random_config_set(5, 10, np.random.default_rng(0))
        strings = [c.to_string() for c in configs]
        assert len(set(strings)) == len(strings)

    def test_rejects_insufficient_count(self):
        with pytest.raises(ValueError):
            random_config_set(5, 5, np.random.default_rng(0))


class TestDelayMeasurer:
    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            DelayMeasurer(repeats=0)

    def test_chain_delay_scalar(self, ring):
        measurer = noiseless_measurer()
        config = ConfigVector.all_selected(ring.stage_count)
        assert measurer.chain_delay(ring, config) == pytest.approx(
            ring.chain_delay(config)
        )


class FakeBitsRng:
    """Replays a fixed sequence of configuration draws, then repeats the last."""

    def __init__(self, rows):
        self.rows = [np.array(row) for row in rows]
        self.calls = 0

    def integers(self, low, high, size):
        index = min(self.calls, len(self.rows) - 1)
        self.calls += 1
        return self.rows[index]


class TestRandomConfigSetRegressions:
    def test_exhaustive_count_small_stage_count(self):
        # stage_count=3, count=8 needs every one of the 2**3 vectors; the
        # old implementation charged duplicate draws against max_attempts
        # and raised spuriously long before collecting all eight.
        configs = random_config_set(3, 8, np.random.default_rng(0), max_attempts=8)
        strings = {c.to_string() for c in configs}
        assert len(strings) == 8

    def test_duplicates_do_not_consume_attempts(self):
        # 5 distinct draws interleaved with duplicates: with max_attempts=1
        # only rank rejections may be charged, and this sequence has none.
        rows = [
            [0, 0, 0],
            [0, 0, 1],
            [0, 0, 1],  # duplicate — free
            [0, 1, 0],
            [0, 1, 0],  # duplicate — free
            [1, 0, 0],
            [1, 1, 1],
        ]
        configs = random_config_set(3, 5, FakeBitsRng(rows), max_attempts=1)
        assert len(configs) == 5

    def test_rank_rejections_are_charged(self):
        # With count == full_rank every draw must raise the rank.  The row
        # 011 = 000 + 001 + 010 (augmented with the intercept column it is
        # dependent on the first three) so it is rejected for rank and
        # charged; with max_attempts=1 that one rejection is allowed and
        # the independent 100 draw completes the set.
        rows = [
            [0, 0, 0],
            [0, 0, 1],
            [0, 1, 0],
            [0, 1, 1],  # dependent — rejected, charged
            [1, 0, 0],
        ]
        configs = random_config_set(3, 4, FakeBitsRng(rows), max_attempts=2)
        assert [c.to_string() for c in configs] == ["000", "001", "010", "100"]
        with pytest.raises(RuntimeError, match="full-rank"):
            random_config_set(3, 4, FakeBitsRng(rows), max_attempts=1)

    def test_stuck_duplicate_generator_terminates(self):
        # A generator that repeats one vector forever must raise instead of
        # spinning (duplicates are free but bounded).
        with pytest.raises(RuntimeError, match="full-rank"):
            random_config_set(3, 4, FakeBitsRng([[1, 0, 1]]), max_attempts=10)

    def test_seeded_outputs_unchanged_by_rewrite(self):
        # The incremental-rank rewrite keeps the draw sequence and the
        # accept/reject decisions, so previously-succeeding seeds return
        # the exact same configuration lists.
        a = random_config_set(6, 10, np.random.default_rng(123))
        b = random_config_set(6, 10, np.random.default_rng(123))
        assert a == b
        design = np.column_stack(
            [np.ones(10), np.stack([c.as_array().astype(float) for c in a])]
        )
        assert np.linalg.matrix_rank(design) == 7


class TestVectorizedChainDelays:
    def test_noiseless_matches_sequential(self, ring):
        measurer = noiseless_measurer()
        configs = leave_one_out_vectors(ring.stage_count)
        batch = measurer.chain_delays(ring, configs)
        sequential = measurer.chain_delays_sequential(ring, configs)
        assert np.array_equal(batch, sequential)

    def test_single_repeat_byte_identical_draw_order(self, ring):
        # One batched normal(size=n) draw equals n sequential size-1 draws,
        # so with repeats=1 the vectorized path reproduces the per-call
        # noise stream exactly.
        configs = leave_one_out_vectors(ring.stage_count)
        batch = DelayMeasurer(
            noise=GaussianNoise(relative_sigma=1e-3),
            repeats=1,
            rng=np.random.default_rng(5),
        ).chain_delays(ring, configs)
        sequential = DelayMeasurer(
            noise=GaussianNoise(relative_sigma=1e-3),
            repeats=1,
            rng=np.random.default_rng(5),
        ).chain_delays_sequential(ring, configs)
        assert np.array_equal(batch, sequential)

    def test_higher_repeats_statistically_equivalent(self, ring):
        # With repeats > 1 the draw order differs by design (documented on
        # chain_delays); values still agree to noise scale.
        configs = leave_one_out_vectors(ring.stage_count)
        batch = DelayMeasurer(
            noise=GaussianNoise(relative_sigma=1e-4),
            repeats=5,
            rng=np.random.default_rng(5),
        ).chain_delays(ring, configs)
        true_values = ring.chain_delays(configs)
        assert np.allclose(batch, true_values, rtol=1e-3)

    def test_empty_config_list(self, ring):
        assert len(noiseless_measurer().chain_delays(ring, [])) == 0

    def test_ring_chain_delays_bit_identical_to_scalar(self, ring):
        configs = leave_one_out_vectors(ring.stage_count)
        batch = ring.chain_delays(configs)
        for config, value in zip(configs, batch):
            assert value == ring.chain_delay(config)

    def test_extractors_still_use_sequential_path(self, ring):
        # The per-ring extractors are pinned to the legacy per-call draw
        # order (ChipROPUF.enroll byte-identity depends on it).
        noisy_a = DelayMeasurer(
            noise=GaussianNoise(relative_sigma=1e-3),
            repeats=5,
            rng=np.random.default_rng(8),
        )
        est = measure_ddiffs_leave_one_out(noisy_a, ring)
        replica = DelayMeasurer(
            noise=GaussianNoise(relative_sigma=1e-3),
            repeats=5,
            rng=np.random.default_rng(8),
        )
        configs = leave_one_out_vectors(ring.stage_count)
        expected = replica.chain_delays_sequential(ring, configs)
        assert np.array_equal(est.measurements, expected)
