"""Load-generator and ``ropuf serve`` CLI tests.

The slow test is the ISSUE's acceptance gate: at least 100 concurrent
clients against one server with zero authentication failures, and proof
that the coalescer actually batched (the concurrency was real).  The fast
tests pin the CLI surface: flag parsing, the ``--bench`` JSON contract,
and its exit-code semantics.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.serve import (
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
    RequestCoalescer,
    percentiles,
    run_load,
)


class TestPercentiles:
    def test_empty_samples(self):
        assert percentiles([]) == {
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }

    def test_ordering(self):
        summary = percentiles(list(range(1, 101)))
        assert summary["p50"] <= summary["p90"] <= summary["p99"]
        assert summary["max"] == 100.0


class TestRunLoad:
    def test_small_load_zero_failures(self):
        farm = DeviceFarm.from_config(FleetConfig(boards=2))
        service = AuthService(farm, CRPStore(None))
        service.enroll_fleet()
        with AuthServer(service).start() as server:
            host, port = server.address
            summary = run_load(
                host, port, clients=8, auths_per_client=3, farm=farm
            )
        assert summary["failures"] == 0, summary["failure_samples"]
        assert summary["requests"] == 24
        assert summary["latency_ms"]["p50"] > 0.0
        assert set(summary["verbs"]) == {"attest", "regen", "challenge-auth"}
        assert set(summary["latency_ms_by_verb"]) == set(summary["verbs"])
        for verb_summary in summary["latency_ms_by_verb"].values():
            assert verb_summary["p50"] > 0.0
            assert verb_summary["p50"] <= verb_summary["p99"]
        # Constant-memory mode is the default: no raw samples kept.
        assert "raw_latencies_ms" not in summary

    def test_sketch_percentiles_match_exact_within_bound(self):
        # The satellite pin: the sketch summary agrees with exact
        # percentiles at the sketch's inverse-CDF rank convention
        # (np.percentile method="inverted_cdf") within the documented
        # 1% relative error.
        import numpy as np

        from repro.obs.quantiles import DEFAULT_RELATIVE_ACCURACY

        farm = DeviceFarm.from_config(FleetConfig(boards=2))
        service = AuthService(farm, CRPStore(None))
        service.enroll_fleet()
        with AuthServer(service).start() as server:
            host, port = server.address
            summary = run_load(
                host,
                port,
                clients=8,
                auths_per_client=6,
                farm=farm,
                record_raw=True,
            )
        raw = summary["raw_latencies_ms"]
        assert len(raw) == summary["requests"]
        for point, key in ((50.0, "p50"), (90.0, "p90"), (99.0, "p99")):
            exact = float(np.percentile(raw, point, method="inverted_cdf"))
            estimate = summary["latency_ms"][key]
            assert abs(estimate - exact) <= (
                DEFAULT_RELATIVE_ACCURACY * exact * (1.0 + 1e-6)
            ), (key, estimate, exact)
        assert summary["latency_ms"]["max"] == max(raw)

    def test_without_farm_skips_challenge_rounds(self):
        farm = DeviceFarm.from_config(FleetConfig(boards=2))
        service = AuthService(farm, CRPStore(None))
        service.enroll_fleet()
        corners = next(iter(farm)).corners
        with AuthServer(service).start() as server:
            host, port = server.address
            summary = run_load(
                host,
                port,
                clients=4,
                auths_per_client=2,
                device_ids=farm.device_ids,
                corners=corners,
            )
        assert summary["failures"] == 0
        assert "challenge-auth" not in summary["verbs"]

    def test_requires_targets(self):
        with pytest.raises(ValueError, match="devices"):
            run_load("127.0.0.1", 1, clients=1)

    @pytest.mark.slow
    def test_hundred_concurrent_clients_zero_auth_failures(self):
        # The acceptance gate: >= 100 concurrent clients, every request
        # must authenticate, and the coalescer must have batched.
        farm = DeviceFarm.from_config(FleetConfig(boards=4))
        coalescer = RequestCoalescer(max_batch=64, max_wait_s=0.002)
        service = AuthService(farm, CRPStore(None), coalescer=coalescer)
        service.enroll_fleet()
        with AuthServer(service).start() as server:
            host, port = server.address
            summary = run_load(
                host, port, clients=100, auths_per_client=5, farm=farm
            )
            stats = coalescer.stats()
        assert summary["failures"] == 0, summary["failure_samples"]
        assert summary["requests"] == 500
        assert stats["max_batch"] > 1
        assert stats["batches"] < stats["requests"]


class TestServeCLI:
    def test_serve_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.boards == 4
        assert args.ro_count == 320
        assert args.stages == 5
        assert args.fleet_method == "case1"
        assert args.store is None
        assert args.auth_threshold == 0.15
        assert args.max_batch == 64
        assert args.window == 0.002
        assert args.bench is False
        assert args.clients == 100
        assert args.auths == 10
        # Telemetry flags (docs/observability.md) default to off.
        assert args.metrics_port is None
        assert args.trace is None
        assert args.slow_ms == 100.0
        assert args.profile is None

    def test_serve_flags_parse_explicit(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--bench",
                "--boards",
                "2",
                "--fleet-method",
                "case2",
                "--store",
                "/tmp/crp.jsonl",
                "--clients",
                "7",
            ]
        )
        assert args.bench is True
        assert args.boards == 2
        assert args.fleet_method == "case2"
        assert args.store == "/tmp/crp.jsonl"
        assert args.clients == 7

    def test_bench_smoke_exits_zero_with_json_summary(self, capsys):
        code = main(
            [
                "serve",
                "--bench",
                "--boards",
                "2",
                "--clients",
                "5",
                "--auths",
                "2",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        summary = json.loads(output)
        assert summary["failures"] == 0
        assert summary["requests"] == 10
        assert summary["coalescer"]["requests"] > 0
        assert summary["store"]["devices"] == 2

    def test_bench_writes_output_file(self, capsys, tmp_path):
        out = tmp_path / "summary.json"
        code = main(
            [
                "serve",
                "--bench",
                "--boards",
                "2",
                "--clients",
                "3",
                "--auths",
                "2",
                "--output",
                str(out),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert json.loads(out.read_text())["failures"] == 0

    def test_bench_with_telemetry_artifacts(self, capsys, tmp_path):
        # --metrics-port, --trace, and --profile all ride along with
        # --bench: the summary JSON stays parseable on stdout and the
        # artifacts are written on shutdown.
        from repro import obs
        from repro.obs.trace import read_trace

        trace_path = tmp_path / "slow.jsonl"
        profile_path = tmp_path / "serve.collapsed"
        code = main(
            [
                "serve",
                "--bench",
                "--boards",
                "2",
                "--clients",
                "4",
                "--auths",
                "2",
                "--metrics-port",
                "0",
                "--trace",
                str(trace_path),
                "--slow-ms",
                "0",
                "--profile",
                str(profile_path),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        summary = json.loads(output)
        assert summary["failures"] == 0
        # Telemetry state is restored on shutdown.
        assert not obs.metrics_enabled()
        assert not obs.tracing_enabled()
        # --slow-ms 0 makes every request slow: the tail-sampled trace
        # must contain the serve frame spans, each carrying request ids.
        assert trace_path.is_file()
        spans, _ = read_trace(trace_path)
        names = {record["name"] for record in spans}
        assert "serve.request" in names
        assert all(
            record["attrs"].get("request_id")
            or record["attrs"].get("request_ids")
            for record in spans
        )
        assert profile_path.is_file()

    def test_bench_with_persistent_store(self, capsys, tmp_path):
        store = tmp_path / "crp.jsonl"
        argv = [
            "serve",
            "--bench",
            "--boards",
            "2",
            "--clients",
            "3",
            "--auths",
            "2",
            "--store",
            str(store),
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["enrollment"]["enrolled"] == 2
        # Second run on the same journal: the fleet is reused, not
        # re-enrolled, and authentication still succeeds.
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["enrollment"]["reused"] == 2
        assert second["failures"] == 0
