"""Tests of the reference stream generators — and of the suite's teeth."""

import numpy as np
import pytest

from repro.nist.complexity import berlekamp_massey, linear_complexity_test
from repro.nist.basic_tests import frequency_test, runs_test
from repro.nist.generators import (
    biased_stream,
    counter_stream,
    lcg_stream,
    lfsr_stream,
    markov_stream,
)


class TestLfsrStream:
    def test_period_is_maximal(self):
        bits = lfsr_stream(2 * (2**4 - 1), degree=4)
        period = 2**4 - 1
        assert np.array_equal(bits[:period], bits[period : 2 * period])

    def test_linear_complexity_equals_degree(self):
        bits = lfsr_stream(200, degree=8, seed=77)
        assert berlekamp_massey(bits) == 8

    def test_balanced_ones(self):
        bits = lfsr_stream(2**16 - 1, degree=16)
        assert abs(np.mean(bits) - 0.5) < 0.01

    def test_fails_linear_complexity_test(self):
        bits = lfsr_stream(20000, degree=16)
        outcome = linear_complexity_test(bits, block_size=100)
        assert outcome.p_value < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            lfsr_stream(0)
        with pytest.raises(ValueError):
            lfsr_stream(10, degree=6)
        with pytest.raises(ValueError):
            lfsr_stream(10, degree=4, seed=16)  # == 0 mod 2**4


class TestLcgStream:
    def test_low_bit_alternates(self):
        # LCG with modulus 2**31 and odd increment: LSB has period 2.
        bits = lcg_stream(100)
        assert np.array_equal(bits[0::2], bits[0::2][0] * np.ones(50, dtype=bool))

    def test_fails_runs_test(self):
        assert runs_test(lcg_stream(1000)).p_value < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            lcg_stream(0)


class TestBiasedStream:
    def test_bias_level(self, rng):
        bits = biased_stream(20000, 0.7, rng)
        assert abs(np.mean(bits) - 0.7) < 0.02

    def test_fails_frequency(self, rng):
        assert frequency_test(biased_stream(1000, 0.7, rng)).p_value < 1e-6

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            biased_stream(0, 0.5, rng)
        with pytest.raises(ValueError):
            biased_stream(10, 1.5, rng)


class TestMarkovStream:
    def test_persistence_creates_runs(self, rng):
        sticky = markov_stream(5000, 0.9, rng)
        transitions = np.mean(sticky[1:] != sticky[:-1])
        assert transitions < 0.2

    def test_balanced_overall(self, rng):
        bits = markov_stream(20000, 0.8, rng)
        assert abs(np.mean(bits) - 0.5) < 0.05

    def test_half_persistence_passes_runs(self, rng):
        bits = markov_stream(2000, 0.5, rng)
        assert runs_test(bits).p_value > 0.001

    def test_sticky_fails_runs(self, rng):
        bits = markov_stream(2000, 0.85, rng)
        assert runs_test(bits).p_value < 1e-10

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            markov_stream(0, 0.5, rng)
        with pytest.raises(ValueError):
            markov_stream(10, 1.0, rng)


class TestCounterStream:
    def test_prefix_values(self):
        bits = counter_stream(24, width=8)
        # values 0, 1, 2 in 8-bit big-endian
        assert bits[:8].tolist() == [False] * 8
        assert bits[8:16].tolist() == [False] * 7 + [True]
        assert bits[16:24].tolist() == [False] * 6 + [True, False]

    def test_heavily_biased_toward_zero(self):
        bits = counter_stream(4096, width=16)
        assert np.mean(bits) < 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            counter_stream(0)
        with pytest.raises(ValueError):
            counter_stream(10, width=0)
