"""NIST tests beyond the frequency family: spectral, rank, templates,
serial, entropy, complexity, universal, excursions."""

import numpy as np
import pytest

from repro.nist.common import InsufficientDataError
from repro.nist.complexity import berlekamp_massey, linear_complexity_test
from repro.nist.entropy_tests import (
    approximate_entropy_test,
    pattern_counts,
    serial_test,
)
from repro.nist.excursions import (
    random_excursions_test,
    random_excursions_variant_test,
)
from repro.nist.spectral import binary_matrix_rank, dft_test, rank_test
from repro.nist.templates import (
    aperiodic_templates,
    non_overlapping_template_test,
    overlapping_template_test,
)
from repro.nist.universal import universal_test


def random_bits(n, seed=0):
    return np.random.default_rng(seed).integers(0, 2, n).astype(bool)


class TestPatternCounts:
    def test_counts_sum_to_n(self):
        bits = random_bits(100)
        for m in (1, 2, 3):
            assert pattern_counts(bits, m).sum() == 100

    def test_known_counts(self):
        bits = np.array([0, 0, 1, 1], dtype=bool)
        counts = pattern_counts(bits, 2)  # wraps: 00,01,11,10
        assert counts.tolist() == [1, 1, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            pattern_counts(np.array([], dtype=bool), 1)
        with pytest.raises(ValueError):
            pattern_counts(random_bits(4), 0)


class TestSerial:
    def test_spec_example(self):
        outcomes = serial_test("0011011101", m=3)
        assert outcomes[0].p_value == pytest.approx(0.808792, abs=1e-6)
        assert outcomes[1].p_value == pytest.approx(0.670320, abs=1e-6)

    def test_periodic_sequence_fails(self):
        outcomes = serial_test("01" * 200, m=3)
        assert outcomes[0].p_value < 1e-10

    def test_m_validation(self):
        with pytest.raises(ValueError):
            serial_test("0101", m=1)

    def test_random_passes(self):
        outcomes = serial_test(random_bits(2048), m=3)
        assert all(o.p_value > 0.001 for o in outcomes)


class TestApproximateEntropy:
    def test_spec_example(self):
        outcome = approximate_entropy_test("0100110101", m=3)
        assert outcome.p_value == pytest.approx(0.261961, abs=1e-6)

    def test_constant_sequence_fails(self):
        assert approximate_entropy_test("1" * 128, m=2).p_value < 1e-10

    def test_random_passes(self):
        assert approximate_entropy_test(random_bits(2048), m=2).p_value > 0.001


class TestDft:
    def test_minimum_length(self):
        with pytest.raises(InsufficientDataError):
            dft_test(random_bits(500))

    def test_periodic_sequence_fails(self):
        assert dft_test(np.array([1, 0, 1, 0] * 500, dtype=bool)).p_value < 1e-6

    def test_random_passes_mostly(self):
        p_values = [dft_test(random_bits(2048, seed=s)).p_value for s in range(20)]
        assert np.mean(np.array(p_values) >= 0.01) >= 0.9


class TestRank:
    def test_binary_rank_identity(self):
        assert binary_matrix_rank(np.eye(8, dtype=int)) == 8

    def test_binary_rank_dependent_rows(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        # row3 = row1 XOR row2 over GF(2)
        assert binary_matrix_rank(matrix) == 2

    def test_binary_rank_zero_matrix(self):
        assert binary_matrix_rank(np.zeros((4, 4), dtype=int)) == 0

    def test_binary_rank_validation(self):
        with pytest.raises(ValueError):
            binary_matrix_rank(np.zeros(4, dtype=int))

    def test_minimum_length(self):
        with pytest.raises(InsufficientDataError):
            rank_test(random_bits(1000))

    def test_random_passes(self):
        assert rank_test(random_bits(40000)).p_value > 0.001

    def test_structured_fails(self):
        # Rank-1 matrices everywhere: every 1024-bit block repeats one row.
        row = random_bits(32, seed=3)
        bits = np.tile(row, 38 * 32)
        assert rank_test(bits).p_value < 1e-10


class TestTemplates:
    def test_aperiodic_templates_m3(self):
        templates = aperiodic_templates(3)
        assert (0, 0, 1) in templates
        assert (1, 0, 0) in templates
        assert (0, 1, 0) not in templates  # period-2 self-overlap
        assert (1, 0, 1) not in templates

    def test_aperiodic_counts_match_reference(self):
        # Known counts of aperiodic binary templates: m=2 -> 2, m=3 -> 4,
        # m=4 -> 6, m=5 -> 12 (half starting with 0, half with 1).
        assert len(aperiodic_templates(2)) == 2
        assert len(aperiodic_templates(3)) == 4
        assert len(aperiodic_templates(4)) == 6
        assert len(aperiodic_templates(5)) == 12

    def test_template_length_validation(self):
        with pytest.raises(ValueError):
            aperiodic_templates(1)
        with pytest.raises(ValueError):
            aperiodic_templates(17)

    def test_spec_example_non_overlapping(self):
        outcome = non_overlapping_template_test(
            "10100100101110010110", template="001", block_count=2
        )
        assert outcome.p_value == pytest.approx(0.344154, abs=1e-6)
        assert sorted(outcome.details["counts"]) == [1, 2]

    def test_non_overlapping_saturated_sequence_fails(self):
        outcome = non_overlapping_template_test(
            "001" * 100, template="001", block_count=4
        )
        assert outcome.p_value < 1e-6

    def test_non_overlapping_validation(self):
        with pytest.raises(InsufficientDataError):
            non_overlapping_template_test("0101", template="001", block_count=4)

    def test_overlapping_minimum_length(self):
        with pytest.raises(InsufficientDataError):
            overlapping_template_test(random_bits(1000))

    def test_overlapping_random_passes(self):
        assert overlapping_template_test(random_bits(8000)).p_value > 0.001

    def test_overlapping_all_ones_fails(self):
        assert overlapping_template_test(np.ones(8000, dtype=bool)).p_value < 1e-6


class TestBerlekampMassey:
    def test_lfsr_complexity_recovered(self):
        # x^4 + x + 1 LFSR: complexity 4.
        state = [1, 0, 0, 1]
        sequence = []
        for _ in range(60):
            sequence.append(state[-1])
            feedback = state[3] ^ state[0]
            state = [feedback] + state[:3]
        assert berlekamp_massey(np.array(sequence, dtype=bool)) == 4

    def test_impulse_complexity(self):
        # 0...01 has complexity equal to its length.
        bits = np.array([0] * 9 + [1], dtype=bool)
        assert berlekamp_massey(bits) == 10

    def test_zero_sequence(self):
        assert berlekamp_massey(np.zeros(16, dtype=bool)) == 0

    def test_alternating_sequence(self):
        assert berlekamp_massey(np.array([1, 0] * 16, dtype=bool)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            berlekamp_massey(np.array([], dtype=bool))


class TestLinearComplexity:
    def test_minimum_length(self):
        with pytest.raises(InsufficientDataError):
            linear_complexity_test(random_bits(5000))

    def test_random_passes(self):
        outcome = linear_complexity_test(random_bits(20000, seed=11), block_size=100)
        assert outcome.p_value > 0.001

    def test_lfsr_stream_fails(self):
        state = [1, 0, 0, 1]
        sequence = []
        for _ in range(20000):
            sequence.append(state[-1])
            feedback = state[3] ^ state[0]
            state = [feedback] + state[:3]
        outcome = linear_complexity_test(
            np.array(sequence, dtype=bool), block_size=100
        )
        assert outcome.p_value < 1e-10

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            linear_complexity_test(random_bits(1000), block_size=2)


class TestUniversal:
    def test_minimum_length(self):
        with pytest.raises(InsufficientDataError):
            universal_test(random_bits(100000))

    def test_random_passes(self):
        assert universal_test(random_bits(400000, seed=2)).p_value > 0.001

    def test_repetitive_fails(self):
        bits = np.tile(random_bits(64, seed=3), 400000 // 64 + 1)[:400000]
        assert universal_test(bits).p_value < 1e-6

    def test_block_length_validation(self):
        with pytest.raises(ValueError):
            universal_test(random_bits(400000), block_length=20)


class TestExcursions:
    def test_insufficient_cycles_raises(self):
        with pytest.raises(InsufficientDataError):
            random_excursions_test(np.ones(2000, dtype=bool))

    def test_random_walk_structure(self):
        bits = random_bits(600000, seed=0)
        outcomes = random_excursions_test(bits)
        assert len(outcomes) == 8
        states = {o.variant for o in outcomes}
        assert states == {f"x={x:+d}" for x in (-4, -3, -2, -1, 1, 2, 3, 4)}
        assert np.mean([o.p_value >= 0.01 for o in outcomes]) >= 0.75

    def test_variant_structure(self):
        bits = random_bits(600000, seed=3)
        outcomes = random_excursions_variant_test(bits)
        assert len(outcomes) == 18
        assert np.mean([o.p_value >= 0.01 for o in outcomes]) >= 0.75

    def test_variant_insufficient_cycles(self):
        with pytest.raises(InsufficientDataError):
            random_excursions_variant_test(np.zeros(2000, dtype=bool))
