"""Tests of the later extension experiments (A7-A10) at reduced scale."""

import numpy as np
import pytest

from repro.experiments.extensions import (
    format_correlation_study,
    format_ecc_cost_study,
    format_margin_scaling,
    format_multicorner_study,
    run_correlation_study,
    run_ecc_cost_study,
    run_margin_scaling_study,
    run_multicorner_study,
)


class TestEccCostStudy:
    def test_orderings(self, small_dataset):
        study = run_ecc_cost_study(small_dataset)
        by_scheme = {r.scheme: r for r in study.requirements}
        assert (
            by_scheme["traditional"].bit_error_rate
            >= by_scheme["case1"].bit_error_rate
        )
        assert (
            by_scheme["traditional"].overhead_bits_per_key_bit
            >= by_scheme["case2"].overhead_bits_per_key_bit
        )

    def test_format(self, small_dataset):
        text = format_ecc_cost_study(run_ecc_cost_study(small_dataset))
        assert "BCH" in text or "none needed" in text
        assert "bit error rate" in text


class TestMarginScaling:
    def test_growth_exponents(self):
        study = run_margin_scaling_study(
            stage_counts=(3, 9, 27), pair_count=200
        )
        n = np.array(study.stage_counts, dtype=float)
        config_slope = np.polyfit(np.log(n), np.log(study.configurable), 1)[0]
        traditional_slope = np.polyfit(
            np.log(n), np.log(study.traditional), 1
        )[0]
        assert config_slope > traditional_slope + 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            run_margin_scaling_study(pair_count=5)

    def test_format(self):
        study = run_margin_scaling_study(stage_counts=(3, 5), pair_count=50)
        text = format_margin_scaling(study)
        assert "ratio" in text and "sqrt(n)" in text


class TestMultiCornerStudy:
    def test_multicorner_at_least_matches_best(self, small_dataset):
        study = run_multicorner_study(small_dataset)
        assert (
            study.multicorner_percent
            <= study.single_corner_worst_percent + 1e-9
        )
        assert (
            study.single_corner_best_percent
            <= study.single_corner_worst_percent
        )

    def test_format(self, small_dataset):
        text = format_multicorner_study(run_multicorner_study(small_dataset))
        assert "multi-corner" in text and "worst corner" in text


class TestCorrelationStudy:
    def test_single_point_plumbing(self):
        study = run_correlation_study(correlation_lengths=(0.0,))
        assert len(study.points) == 1
        point = study.points[0]
        assert point.correlation_length == 0.0
        assert point.passed
        assert point.worst_proportion > 0.9

    def test_format(self):
        study = run_correlation_study(correlation_lengths=(0.0,))
        text = format_correlation_study(study)
        assert "correlation" in text and "PASS" in text
