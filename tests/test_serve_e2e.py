"""End-to-end serving tests over a real socket on an ephemeral port.

The full stack — synthetic fleet, persistent store, coalescer, threaded
server, wire client — exercised the way a deployment would: enroll a
fleet, authenticate genuine devices at several (V, T) corners, reject
impostors and replays, regenerate keys, then crash the server, corrupt
the store's tail, restart on the same journal, and authenticate again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    AuthClient,
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
    RequestCoalescer,
)
from repro.serve.protocol import PROTOCOL_VERSION, decode_bits
from repro.variation.environment import OperatingPoint


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """A served fleet of three devices backed by an on-disk store."""
    path = tmp_path_factory.mktemp("serve-e2e") / "crp.jsonl"
    farm = DeviceFarm.from_config(FleetConfig(boards=3))
    service = AuthService(
        farm,
        CRPStore(path),
        coalescer=RequestCoalescer(max_batch=16, max_wait_s=0.001),
    )
    outcome = service.enroll_fleet()
    assert len(outcome["enrolled"]) == 3
    server = AuthServer(service).start()
    yield server, service, farm
    server.stop()


@pytest.fixture()
def client(stack):
    server, _, _ = stack
    with AuthClient(*server.address) as connection:
        yield connection


def genuine_answer(farm, device_id: str, corner, indices) -> np.ndarray:
    """What the real device would answer: its bits at the challenged indices."""
    bits = farm.device(device_id).evaluator.response(corner)
    return bits[np.array(indices)]


class TestBasicVerbs:
    def test_ping_reports_protocol_version(self, client):
        response = client.ping()
        assert response["ok"] is True
        assert response["version"] == PROTOCOL_VERSION

    def test_devices_lists_the_enrolled_fleet(self, stack, client):
        _, _, farm = stack
        assert client.devices() == farm.device_ids

    def test_stats_expose_all_three_layers(self, client):
        client.ping()
        stats = client.stats()
        assert stats["service"]["requests.ping"] >= 1
        assert set(stats["store"]) == {
            "devices",
            "hits",
            "misses",
            "tombstones",
        }
        assert "mean_batch" in stats["coalescer"]

    def test_unknown_device_is_a_clean_error(self, client):
        response = client.challenge("never-enrolled")
        assert response["ok"] is False
        assert response["error_type"] == "UnknownDevice"


class TestAttestation:
    def test_genuine_device_accepted_across_corners(self, stack, client):
        _, _, farm = stack
        device = next(iter(farm))
        for corner in device.corners[::6]:
            response = client.attest(device.device_id, corner)
            assert response["ok"] is True
            assert response["accepted"] is True
            assert response["distance"] <= response["threshold"]

    def test_attest_returns_the_measured_response(self, stack, client):
        _, _, farm = stack
        device = next(iter(farm))
        corner = device.corners[0]
        response = client.attest(device.device_id, corner)
        expected = farm.device(device.device_id).evaluator.response(corner)
        assert np.array_equal(decode_bits(response["response"]), expected)

    def test_unmeasured_corner_is_a_clean_error(self, stack, client):
        _, _, farm = stack
        device_id = farm.device_ids[0]
        bogus = OperatingPoint(voltage=9.9, temperature=999.0)
        response = client.attest(device_id, bogus)
        assert response["ok"] is False
        assert response["error_type"] == "UnmeasuredCorner"


class TestChallengeResponse:
    def test_genuine_answer_accepted(self, stack, client):
        _, _, farm = stack
        device_id = farm.device_ids[0]
        corner = farm.device(device_id).corners[0]
        issued = client.challenge(device_id)
        assert issued["ok"] is True
        answer = genuine_answer(farm, device_id, corner, issued["indices"])
        verdict = client.auth(device_id, issued["challenge_id"], answer)
        assert verdict["ok"] is True
        assert verdict["accepted"] is True

    def test_impostor_answer_rejected(self, stack, client):
        # An impostor holding a *different* board answers the challenge
        # with its own silicon's bits: rejected.
        _, _, farm = stack
        victim, impostor = farm.device_ids[:2]
        corner = farm.device(victim).corners[0]
        issued = client.challenge(victim)
        forged = genuine_answer(farm, impostor, corner, issued["indices"])
        verdict = client.auth(victim, issued["challenge_id"], forged)
        assert verdict["accepted"] is False
        assert verdict["distance"] > verdict["threshold"]

    def test_random_guess_rejected(self, stack, client):
        _, _, farm = stack
        device_id = farm.device_ids[0]
        issued = client.challenge(device_id)
        guess = np.random.default_rng(13).integers(
            0, 2, size=len(issued["indices"])
        )
        verdict = client.auth(device_id, issued["challenge_id"], guess)
        assert verdict["accepted"] is False

    def test_replayed_challenge_rejected(self, stack, client):
        _, _, farm = stack
        device_id = farm.device_ids[0]
        corner = farm.device(device_id).corners[0]
        issued = client.challenge(device_id)
        answer = genuine_answer(farm, device_id, corner, issued["indices"])
        first = client.auth(device_id, issued["challenge_id"], answer)
        assert first["accepted"] is True
        # Same (challenge, answer) pair again: single-use means rejection.
        replay = client.auth(device_id, issued["challenge_id"], answer)
        assert replay["accepted"] is False
        assert "challenge" in replay["reason"]

    def test_challenge_bound_to_its_device(self, stack, client):
        _, _, farm = stack
        issued_for, somebody_else = farm.device_ids[:2]
        corner = farm.device(somebody_else).corners[0]
        issued = client.challenge(issued_for)
        # A genuine answer from the wrong device under its own identity.
        answer = genuine_answer(
            farm, somebody_else, corner, issued["indices"]
        )
        verdict = client.auth(
            somebody_else, issued["challenge_id"], answer
        )
        assert verdict["accepted"] is False
        assert "different device" in verdict["reason"]

    def test_challenges_are_unique(self, client, stack):
        _, _, farm = stack
        device_id = farm.device_ids[0]
        a = client.challenge(device_id)
        b = client.challenge(device_id)
        assert a["challenge_id"] != b["challenge_id"]

    def test_wrong_answer_width_is_bad_request(self, stack, client):
        _, _, farm = stack
        device_id = farm.device_ids[0]
        issued = client.challenge(device_id)
        verdict = client.auth(device_id, issued["challenge_id"], "01")
        assert verdict["ok"] is False
        assert verdict["error_type"] == "BadRequest"


class TestKeyRegeneration:
    def test_key_verified_and_stable_across_corners(self, stack, client):
        server, service, farm = stack
        device = next(iter(farm))
        keys = set()
        for corner in device.corners[:3]:
            response = client.regen(device.device_id, corner)
            assert response["ok"] is True
            assert response["verified"] is True
            keys.add(response["key"])
        # The fuzzy extractor absorbs corner-to-corner noise: one key.
        assert len(keys) == 1
        record = service.store.get(device.device_id)
        assert record.matches_key(bytes.fromhex(keys.pop()))

    def test_keys_differ_between_devices(self, stack, client):
        _, _, farm = stack
        corner = next(iter(farm)).corners[0]
        keys = {
            client.regen(device_id, corner)["key"]
            for device_id in farm.device_ids
        }
        assert len(keys) == len(farm.device_ids)


class TestEvictionAndRestart:
    def test_evicted_device_stops_authenticating(self, tmp_path):
        farm = DeviceFarm.from_config(FleetConfig(boards=2))
        service = AuthService(farm, CRPStore(tmp_path / "crp.jsonl"))
        service.enroll_fleet()
        victim = farm.device_ids[0]
        with AuthServer(service).start() as server:
            with AuthClient(*server.address) as client:
                corner = farm.device(victim).corners[0]
                assert client.attest(victim, corner)["accepted"] is True
                service.store.evict(victim)
                response = client.attest(victim, corner)
                assert response["ok"] is False
                assert response["error_type"] == "UnknownDevice"
                # The other device is untouched.
                other = farm.device_ids[1]
                assert client.attest(other, corner)["accepted"] is True

    def test_crash_corrupt_restart_reauthenticate(self, tmp_path):
        path = tmp_path / "crp.jsonl"
        config = FleetConfig(boards=2)

        farm = DeviceFarm.from_config(config)
        service = AuthService(farm, CRPStore(path))
        assert len(service.enroll_fleet()["enrolled"]) == 2
        with AuthServer(service).start() as server:
            with AuthClient(*server.address) as client:
                device_id = farm.device_ids[0]
                corner = farm.device(device_id).corners[0]
                assert client.attest(device_id, corner)["accepted"] is True
        # The server is down.  Simulate the crash having happened
        # mid-append: a ragged half-record at the journal's tail.
        with open(path, "ab") as handle:
            handle.write(b'{"scheme":"ropuf-crp-v1","kind":"enro')

        # A fresh process: same seed rebuilds the same fleet, the store
        # repairs its tail, and enrollment finds everything already there.
        farm2 = DeviceFarm.from_config(config)
        service2 = AuthService(farm2, CRPStore(path))
        outcome = service2.enroll_fleet()
        assert outcome["enrolled"] == []
        assert sorted(outcome["reused"]) == farm2.device_ids
        with AuthServer(service2).start() as server:
            with AuthClient(*server.address) as client:
                for device_id in farm2.device_ids:
                    corner = farm2.device(device_id).corners[0]
                    attested = client.attest(device_id, corner)
                    assert attested["accepted"] is True
                    regen = client.regen(device_id, corner)
                    assert regen["verified"] is True
