"""Tests of the JSON experiment runner."""

import json

import pytest

from repro.experiments.runner import run_all_experiments, save_results_json


@pytest.fixture(scope="module")
def results(small_dataset):
    return run_all_experiments(small_dataset)


# module-scoped fixture needs the session dataset; re-declare access
@pytest.fixture(scope="module")
def small_dataset():
    from repro.datasets.vtlike import VTLikeConfig, generate_vt_like

    return generate_vt_like(
        VTLikeConfig(
            nominal_boards=8,
            swept_boards=2,
            ro_count=128,
            grid_columns=8,
            grid_rows=16,
            seed=1234,
        )
    )


class TestRunner:
    def test_all_sections_present(self, results):
        for key in (
            "table1_nist_case1",
            "table2_nist_case2",
            "nist_raw",
            "fig3_uniqueness",
            "table3_configs_case1",
            "table4_configs_case2",
            "fig4_voltage",
            "table5_bits",
            "sec4e_threshold",
            "ablation_distiller",
            "ablation_attacks",
            "ecc_cost",
        ):
            assert key in results, key

    def test_table5_always_paper_exact(self, results):
        for row in results["table5_bits"].values():
            assert row["matches_paper"]

    def test_qualitative_orderings_hold(self, results):
        for entry in results["fig4_voltage"].values():
            if isinstance(entry, dict):
                assert (
                    entry["configurable_mean_flip_percent"]
                    <= entry["traditional_mean_flip_percent"]
                )
        attacks = results["ablation_attacks"]
        assert attacks["unconstrained"]["accuracy"] > 0.9
        assert attacks["case1"]["accuracy"] < 0.8

    def test_json_round_trip(self, results, small_dataset, tmp_path):
        path = save_results_json(tmp_path / "results.json", small_dataset)
        loaded = json.loads(path.read_text())
        assert loaded["dataset"] == results["dataset"]
        assert set(loaded) == set(results)
