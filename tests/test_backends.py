"""The compute-backend layer: selection, identity, and tolerance contracts.

Three contracts are pinned here:

* the ``numpy`` backend is **bit-identical** to the reference loops across
  all three kernel families (masked row sums, pair/sweep delay sums, the
  leave-one-out solve) — dispatching through the backend seam changes no
  output anywhere;
* ``numpy-float32`` and ``tiled`` agree with the exact backend within
  their documented ``DELAY_RTOL``/``DELAY_ATOL`` on delays, exactly on
  decision bits whenever the margin clears the tolerance, and exactly on
  the integer Gram update regardless;
* selection precedence is override > ``ROPUF_BACKEND`` env var > default.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import backends
from repro.backends import (
    Backend,
    BackendConfig,
    Float32Backend,
    NumpyBackend,
    TiledBackend,
    available_backends,
    current_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.backends.numpy_backend import _SEQUENTIAL_SUM_WIDTH

TOLERANT = ["numpy-float32", "tiled"]


def _reference_masked_row_sums(values: np.ndarray, mask: np.ndarray):
    return np.array(
        [np.sum(values[p, mask[p]]) for p in range(len(values))]
    )


def _delay_close(backend: Backend, got, want) -> bool:
    return np.allclose(
        got, want, rtol=backend.DELAY_RTOL, atol=backend.DELAY_ATOL
    )


@st.composite
def masked_rows(draw):
    rows = draw(st.integers(min_value=1, max_value=40))
    cols = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    values = rng.normal(scale=draw(st.sampled_from([1.0, 1e-10])), size=(rows, cols))
    mask = rng.random((rows, cols)) < draw(st.floats(0.0, 1.0))
    return values, mask


@st.composite
def sweep_problems(draw):
    ops = draw(st.integers(min_value=1, max_value=6))
    pairs = draw(st.integers(min_value=1, max_value=24))
    stages = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    rings = 2 * pairs
    stacked = rng.normal(size=(ops, rings, stages))
    order = rng.permutation(rings)
    top_rings, bottom_rings = order[:pairs], order[pairs:]
    top_masks = (rng.random((pairs, stages)) < 0.5).astype(float)
    bottom_masks = (rng.random((pairs, stages)) < 0.5).astype(float)
    return stacked, top_rings, bottom_rings, top_masks, bottom_masks


@st.composite
def loo_problems(draw):
    rings = draw(st.integers(min_value=1, max_value=24))
    stages = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    selected = rng.normal(loc=1.0, scale=0.05, size=(rings, stages))
    bypass = rng.normal(loc=0.4, scale=0.02, size=(rings, stages))
    config_masks = np.ones((stages + 1, stages), dtype=bool)
    config_masks[1:] ^= np.eye(stages, dtype=bool)
    return selected, bypass, config_masks


class TestNumpyBackendBitIdentity:
    """The default backend reproduces the reference loops bit-for-bit."""

    @given(problem=masked_rows())
    def test_masked_row_sums_exact(self, problem):
        values, mask = problem
        got = NumpyBackend().masked_row_sums(values, mask)
        assert np.array_equal(got, _reference_masked_row_sums(values, mask))

    @given(problem=sweep_problems())
    def test_pair_and_sweep_sums_exact(self, problem):
        stacked, top_rings, bottom_rings, top_masks, bottom_masks = problem
        backend = NumpyBackend()
        top, bottom = backend.sweep_pair_delay_sums(
            stacked, top_rings, bottom_rings, top_masks, bottom_masks
        )
        want_top = np.einsum("ops,ps->op", stacked[:, top_rings, :], top_masks)
        want_bottom = np.einsum(
            "ops,ps->op", stacked[:, bottom_rings, :], bottom_masks
        )
        assert np.array_equal(top, want_top)
        assert np.array_equal(bottom, want_bottom)
        # the single-op kernel is the sweep's row: same reduction, same bits
        row = backend.pair_delay_sums(stacked[0, top_rings, :], top_masks)
        assert np.array_equal(row, want_top[0])

    @given(problem=loo_problems())
    def test_loo_solve_exact(self, problem):
        selected, bypass, config_masks = problem
        backend = NumpyBackend()
        delays = backend.loo_delay_matrix(selected, bypass, config_masks)
        want = np.where(
            config_masks[None, :, :], selected[:, None, :], bypass[:, None, :]
        ).sum(axis=2)
        assert np.array_equal(delays, want)
        assert np.array_equal(
            backend.loo_ddiffs(delays), delays[:, 0:1] - delays[:, 1:]
        )


class TestToleranceBackends:
    """float32/tiled stay within their documented bounds; ints stay exact."""

    @pytest.mark.parametrize("name", TOLERANT)
    @given(problem=masked_rows())
    def test_masked_row_sums_within_tolerance(self, name, problem):
        values, mask = problem
        backend = resolve_backend(name)
        got = backend.masked_row_sums(values, mask)
        assert _delay_close(
            backend, got, _reference_masked_row_sums(values, mask)
        )

    @pytest.mark.parametrize("name", TOLERANT)
    @given(problem=sweep_problems())
    def test_sweep_within_tolerance_and_bits_exact_above_margin(
        self, name, problem
    ):
        stacked, top_rings, bottom_rings, top_masks, bottom_masks = problem
        backend = resolve_backend(name)
        exact = NumpyBackend()
        top, bottom = backend.sweep_pair_delay_sums(
            stacked, top_rings, bottom_rings, top_masks, bottom_masks
        )
        want_top, want_bottom = exact.sweep_pair_delay_sums(
            stacked, top_rings, bottom_rings, top_masks, bottom_masks
        )
        assert _delay_close(backend, top, want_top)
        assert _delay_close(backend, bottom, want_bottom)
        # Decision bits: exact wherever the margin clears the tolerance.
        margin = np.abs(want_top - want_bottom)
        scale = np.maximum(np.abs(want_top), np.abs(want_bottom))
        clear = margin > 4 * (backend.DELAY_RTOL * scale + backend.DELAY_ATOL)
        assert np.array_equal(
            (top > bottom)[clear], (want_top > want_bottom)[clear]
        )

    @pytest.mark.parametrize("name", TOLERANT)
    @given(problem=loo_problems())
    def test_loo_within_tolerance(self, name, problem):
        selected, bypass, config_masks = problem
        backend = resolve_backend(name)
        got = backend.loo_delay_matrix(selected, bypass, config_masks)
        want = NumpyBackend().loo_delay_matrix(selected, bypass, config_masks)
        assert _delay_close(backend, got, want)

    @pytest.mark.parametrize("name", ["numpy"] + TOLERANT)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rows=st.integers(min_value=1, max_value=200),
        bits=st.integers(min_value=1, max_value=16),
    )
    def test_gram_update_integer_exact_everywhere(self, name, seed, rows, bits):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2, size=(rows, bits)).astype(np.int64)
        gram = np.zeros((bits, bits), dtype=np.int64)
        resolve_backend(name).gram_update(gram, x)
        assert np.array_equal(gram, x.T @ x)

    def test_tiled_blocks_smaller_than_input(self):
        # Force multiple blocks (and the threaded path) on a small problem.
        backend = TiledBackend(tile_rows=3, threads=2)
        rng = np.random.default_rng(7)
        values = rng.normal(size=(17, 9))
        mask = rng.random((17, 9)) < 0.5
        assert _delay_close(
            backend,
            backend.masked_row_sums(values, mask),
            _reference_masked_row_sums(values, mask),
        )

    def test_tiled_shared_ring_fallback_matches(self):
        # One ring feeding several masks must take the blocked fallback
        # (the scatter would clobber) and still match the exact kernel.
        rng = np.random.default_rng(11)
        stacked = rng.normal(size=(3, 8, 4))
        top_rings = np.zeros(5, dtype=int)  # everyone shares ring 0
        bottom_rings = np.arange(1, 6)
        top_masks = (rng.random((5, 4)) < 0.5).astype(float)
        bottom_masks = (rng.random((5, 4)) < 0.5).astype(float)
        backend = TiledBackend(tile_rows=2)
        got = backend.sweep_pair_delay_sums(
            stacked, top_rings, bottom_rings, top_masks, bottom_masks
        )
        want = NumpyBackend().sweep_pair_delay_sums(
            stacked, top_rings, bottom_rings, top_masks, bottom_masks
        )
        assert _delay_close(backend, got[0], want[0])
        assert _delay_close(backend, got[1], want[1])


def _board_puf(method: str = "case1", seed: int = 7):
    from repro.core.pairing import RingAllocation
    from repro.core.puf import BoardROPUF
    from repro.variation.noise import NoiselessMeasurement

    data_rng = np.random.default_rng(42)
    base = data_rng.normal(1.0, 0.02, 120)
    sensitivity = data_rng.normal(0.05, 0.01, 120)

    def provider(op):
        return base * (1.0 + sensitivity * (1.20 - op.voltage))

    return BoardROPUF(
        delay_provider=provider,
        allocation=RingAllocation(stage_count=5, ring_count=24),
        method=method,
        response_noise=NoiselessMeasurement(),
        rng=np.random.default_rng(seed),
    )


class TestEngineLevelIdentity:
    """Through the real engines: numpy backend == historical outputs."""

    def test_batch_selectors_unchanged_and_tolerant_backends_close(self):
        with use_backend("numpy"):
            reference = _board_puf().enroll()
        for name in ["numpy"] + TOLERANT:
            with use_backend(name):
                other = _board_puf().enroll()
            # selection margins sit far above both backends' tolerances
            assert np.array_equal(other.bits, reference.bits)
            for got, want in zip(other.selections, reference.selections):
                assert np.array_equal(
                    got.top_config.as_array(), want.top_config.as_array()
                )
                assert np.array_equal(
                    got.bottom_config.as_array(), want.bottom_config.as_array()
                )

    def test_sweep_engine_matches_reference_loop_per_backend(self):
        from repro.core.batch import BatchEvaluator, response_loop_reference
        from repro.variation.environment import OperatingPoint

        ops = [
            OperatingPoint(voltage=v, temperature=25.0)
            for v in (0.98, 1.20, 1.44)
        ]
        with use_backend("numpy"):
            puf = _board_puf(method="case2")
            enrollment = puf.enroll()
            looped = np.stack(
                [response_loop_reference(puf, enrollment, op) for op in ops]
            )
        for name in ["numpy"] + TOLERANT:
            with use_backend(name):
                swept = BatchEvaluator.from_puf(puf, enrollment).response_sweep(
                    ops
                )
            assert np.array_equal(swept, looped)  # bits clear the margins


class TestSelectionAndConfig:
    def test_default_and_available(self):
        assert current_backend().name == "numpy"
        assert current_backend().exact
        names = available_backends()
        assert {"numpy", "numpy-float32", "tiled"} <= set(names)
        if not backends.HAVE_NUMBA:
            assert "numba" not in names

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv("ROPUF_BACKEND", "numpy-float32")
        assert current_backend().name == "numpy-float32"
        monkeypatch.setenv(
            "ROPUF_BACKEND", '{"name":"tiled","tile_rows":64,"threads":2}'
        )
        backend = current_backend()
        assert backend.name == "tiled"
        assert (backend.tile_rows, backend.threads) == (64, 2)

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("ROPUF_BACKEND", "tiled")
        try:
            set_backend("numpy-float32")
            assert current_backend().name == "numpy-float32"
        finally:
            set_backend(None)
        assert current_backend().name == "tiled"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("tiled"):
                assert current_backend().name == "tiled"
                raise RuntimeError("boom")
        assert current_backend().name == "numpy"

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="available:.*numpy"):
            resolve_backend("cuda")

    def test_config_round_trip_and_validation(self):
        config = BackendConfig(name="tiled", tile_rows=128, threads=3)
        assert BackendConfig.from_json(config.to_json()) == config
        with pytest.raises(ValueError):
            BackendConfig(name="tiled", tile_rows=0)
        with pytest.raises(ValueError):
            BackendConfig(name="tiled", threads=0)
        with pytest.raises(ValueError):
            BackendConfig(name="")

    def test_instances_cached_per_config(self):
        assert resolve_backend("tiled") is resolve_backend("tiled")
        assert resolve_backend("tiled") is not resolve_backend(
            BackendConfig(name="tiled", tile_rows=99)
        )

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            backends.register_backend("numpy", lambda config: NumpyBackend())

    def test_sequential_sum_width_reexport(self):
        # the byte-identity pin the selectors rely on lives with the kernel
        from repro.core.selection_batch import (
            _SEQUENTIAL_SUM_WIDTH as via_selectors,
        )

        assert via_selectors == _SEQUENTIAL_SUM_WIDTH == 7

    def test_backend_counters_recorded(self):
        from repro import obs

        obs.reset_metrics()
        obs.enable_metrics()
        try:
            NumpyBackend().masked_row_sums(
                np.ones((4, 3)), np.ones((4, 3), dtype=bool)
            )
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable_metrics()
            obs.reset_metrics()
        assert counters["backend.numpy.calls"] == 1
        assert counters["backend.numpy.masked_row_sums.elements"] == 12

    def test_float32_is_actually_single_precision(self):
        # sanity: the backend really reduces in float32 (a sum that loses
        # precision in single must differ from the float64 reference)
        values = np.array([[1.0, 1e-9, -1.0]])
        mask = np.ones_like(values, dtype=bool)
        exact = NumpyBackend().masked_row_sums(values, mask)
        single = Float32Backend().masked_row_sums(values, mask)
        assert exact[0] != 0.0
        assert single[0] != exact[0]
