"""Integration tests of the extension experiments (A4-A6)."""


from repro.experiments.extensions import (
    format_aging_study,
    format_leakage_study,
    format_scheme_zoo,
    run_aging_study,
    run_leakage_study,
    run_scheme_zoo,
)


class TestLeakageStudy:
    def test_equal_counts_protect_unconstrained_leaks(self, small_dataset):
        study = run_leakage_study(small_dataset, stage_count=5, max_boards=8)
        by_scheme = {r.scheme: r for r in study.results}
        assert by_scheme["unconstrained"].accuracy > 0.9
        assert by_scheme["case1"].advantage < 0.2
        assert by_scheme["case2"].advantage < 0.2

    def test_model_attack_included(self, small_dataset):
        study = run_leakage_study(small_dataset, stage_count=5, max_boards=8)
        assert study.model_attack.advantage > 0.2

    def test_format(self, small_dataset):
        text = format_leakage_study(
            run_leakage_study(small_dataset, stage_count=5, max_boards=8)
        )
        assert "unconstrained" in text and "modeling attack" in text


class TestAgingStudy:
    def test_configurable_outlasts_traditional(self):
        study = run_aging_study(chip_count=2, unit_count=112, years=(10.0,))
        assert (
            study.flip_percent["case2"][0]
            <= study.flip_percent["traditional"][0]
        )

    def test_flips_monotone_in_years_for_traditional(self):
        study = run_aging_study(chip_count=2, unit_count=112, years=(1.0, 20.0))
        traditional = study.flip_percent["traditional"]
        assert traditional[1] >= traditional[0] - 1e-9

    def test_format(self):
        study = run_aging_study(chip_count=2, unit_count=112, years=(5.0,))
        text = format_aging_study(study)
        assert "aging" in text and "5y" in text


class TestSchemeZoo:
    def test_utilisation_ordering(self, small_dataset):
        zoo = run_scheme_zoo(small_dataset)
        per_ring = {row.scheme: row.bits_per_ring for row in zoo.rows}
        assert per_ring["cooperative"] > per_ring["case1"]
        assert per_ring["case1"] == per_ring["traditional"]
        assert per_ring["1-out-of-8"] < per_ring["case1"]

    def test_reliability_ordering(self, small_dataset):
        zoo = run_scheme_zoo(small_dataset)
        flips = {row.scheme: row.flip_percent for row in zoo.rows}
        assert flips["case2"] <= flips["traditional"]
        assert flips["1-out-of-8"] == 0.0
        # ordering encoding is the most fragile scheme
        assert flips["cooperative"] >= flips["traditional"]

    def test_offset_gain_non_negative(self, small_dataset):
        zoo = run_scheme_zoo(small_dataset)
        assert zoo.offset_margin_gain_percent >= 0.0

    def test_format(self, small_dataset):
        text = format_scheme_zoo(run_scheme_zoo(small_dataset))
        assert "bits/ring" in text and "offset-aware" in text
        assert "cooperative" in text


class TestCliExtensions:
    def test_extensions_command_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["extensions"])
        assert args.command == "extensions"
