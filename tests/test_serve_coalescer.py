"""Coalescing correctness: batched evaluation must equal serial, always.

The serve layer's central claim is that coalescing concurrent requests
into one einsum dispatch changes *nothing* about the bits produced —
pinned here at both levels: the pure function
(:func:`repro.core.batch.coalesce_responses`) against serial evaluation,
and the threaded :class:`~repro.serve.coalescer.RequestCoalescer` under
real concurrency, including its failure-isolation and shutdown contracts.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.batch import (
    coalesce_pair_delays,
    coalesce_responses,
)
from repro.serve import DeviceFarm, FleetConfig, RequestCoalescer
from repro.serve.admission import Deadline, DeadlineExceeded
from repro.variation.environment import OperatingPoint


def build_farm(boards: int = 3, **overrides) -> DeviceFarm:
    return DeviceFarm.from_config(FleetConfig(boards=boards, **overrides))


def entries_for(farm: DeviceFarm, count: int):
    """A deterministic mixed workload: devices x corners, round-robin."""
    devices = list(farm)
    corners = devices[0].corners
    return [
        (
            devices[i % len(devices)].evaluator,
            corners[(i * 7) % len(corners)],
        )
        for i in range(count)
    ]


class TestCoalesceResponsesFunction:
    @pytest.mark.parametrize("count", [1, 2, 5, 12])
    def test_byte_identical_to_serial(self, count):
        # Two farms from the same seed: one evaluated serially, one
        # through the coalesced path; every response must match bitwise.
        serial_farm = build_farm()
        batch_farm = build_farm()
        serial = [
            evaluator.response(op)
            for evaluator, op in entries_for(serial_farm, count)
        ]
        coalesced = coalesce_responses(entries_for(batch_farm, count))
        assert len(coalesced) == count
        for mine, theirs in zip(coalesced, serial):
            assert mine.tobytes() == theirs.tobytes()

    def test_empty_batch(self):
        assert coalesce_responses([]) == []

    def test_mixed_stage_widths_in_one_batch(self):
        # Fleets with different ring widths coalesce in the same batch:
        # grouping is by stage width, results stay per-request identical.
        farm_n5 = build_farm(boards=2, stage_count=5)
        farm_n4 = build_farm(boards=2, stage_count=4, require_odd=False)
        corner = next(iter(farm_n5)).corners[0]
        entries = [
            (device.evaluator, corner)
            for pair in zip(farm_n5, farm_n4)
            for device in pair
        ]
        serial = [
            device.evaluator.response(corner)
            for pair in zip(build_farm(boards=2, stage_count=5),
                            build_farm(boards=2, stage_count=4,
                                       require_odd=False))
            for device in pair
        ]
        for mine, theirs in zip(coalesce_responses(entries), serial):
            assert mine.tobytes() == theirs.tobytes()

    def test_pair_delays_identical_under_concatenation(self):
        # The underlying numerical claim: the grouped einsum returns the
        # exact floats the per-evaluator einsum returns.
        farm = build_farm()
        corner = next(iter(farm)).corners[3]
        requests = [d.evaluator.delay_request(corner) for d in farm]
        grouped = coalesce_pair_delays(requests)
        for device, (top, bottom) in zip(farm, grouped):
            alone_top, alone_bottom = device.evaluator.pair_delays(corner)
            assert top.tobytes() == alone_top.tobytes()
            assert bottom.tobytes() == alone_bottom.tobytes()

    def test_mismatched_requests_rejected(self):
        farm = build_farm(boards=2)
        entries = entries_for(farm, 2)
        requests = [entries[0][0].delay_request(entries[0][1])]
        with pytest.raises(ValueError, match="delay requests"):
            coalesce_responses(entries, requests=requests)

    def test_unmeasured_corner_raises_from_gather(self):
        farm = build_farm(boards=1)
        device = next(iter(farm))
        bogus = OperatingPoint(voltage=9.9, temperature=999.0)
        with pytest.raises(KeyError):
            coalesce_responses([(device.evaluator, bogus)])


class TestRequestCoalescer:
    def test_single_submit_matches_direct_response(self):
        farm = build_farm()
        reference_farm = build_farm()
        device = next(iter(farm))
        corner = device.corners[0]
        with RequestCoalescer(max_batch=8, max_wait_s=0.0) as coalescer:
            bits = coalescer.submit(device.evaluator, corner)
        expected = next(iter(reference_farm)).evaluator.response(corner)
        assert bits.tobytes() == expected.tobytes()

    def test_concurrent_submits_all_succeed_and_batch(self):
        farm = build_farm()
        reference_farm = build_farm()
        workload = entries_for(farm, 12)
        expected = [
            evaluator.response(op)
            for evaluator, op in entries_for(reference_farm, 12)
        ]
        results: list[np.ndarray | None] = [None] * len(workload)
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(workload))
        with RequestCoalescer(max_batch=64, max_wait_s=0.05) as coalescer:

            def worker(index: int) -> None:
                evaluator, op = workload[index]
                barrier.wait()
                try:
                    results[index] = coalescer.submit(evaluator, op)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(workload))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = coalescer.stats()
        assert errors == []
        assert stats["requests"] == len(workload)
        # The whole point: concurrent submissions shared dispatches.
        assert stats["max_batch"] > 1
        assert stats["batches"] < len(workload)
        # ... without changing a single bit relative to serial evaluation.
        for mine, theirs in zip(results, expected):
            assert mine is not None
            assert mine.tobytes() == theirs.tobytes()

    def test_bad_request_fails_alone(self):
        farm = build_farm(boards=2)
        good_device, other = list(farm)
        corner = good_device.corners[0]
        bogus = OperatingPoint(voltage=9.9, temperature=999.0)
        outcomes: dict[str, object] = {}
        barrier = threading.Barrier(3)
        with RequestCoalescer(max_batch=8, max_wait_s=0.1) as coalescer:

            def good(name: str, evaluator) -> None:
                barrier.wait()
                outcomes[name] = coalescer.submit(evaluator, corner)

            def bad() -> None:
                barrier.wait()
                try:
                    coalescer.submit(good_device.evaluator, bogus)
                    outcomes["bad"] = "no error"
                except KeyError as exc:
                    outcomes["bad"] = exc

            threads = [
                threading.Thread(target=good, args=("a", good_device.evaluator)),
                threading.Thread(target=good, args=("b", other.evaluator)),
                threading.Thread(target=bad),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # The poisoned request raised; its batch-mates still got bits.
        assert isinstance(outcomes["bad"], KeyError)
        assert isinstance(outcomes["a"], np.ndarray)
        assert isinstance(outcomes["b"], np.ndarray)

    def test_max_batch_is_respected(self):
        farm = build_farm()
        workload = entries_for(farm, 6)
        barrier = threading.Barrier(len(workload))
        with RequestCoalescer(max_batch=2, max_wait_s=0.05) as coalescer:

            def worker(index: int) -> None:
                evaluator, op = workload[index]
                barrier.wait()
                coalescer.submit(evaluator, op)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(workload))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = coalescer.stats()
        assert stats["max_batch"] <= 2
        assert stats["batches"] >= 3
        assert stats["requests"] == 6

    def test_submit_after_close_raises(self):
        farm = build_farm(boards=1)
        device = next(iter(farm))
        coalescer = RequestCoalescer()
        coalescer.close()
        with pytest.raises(RuntimeError, match="closed"):
            coalescer.submit(device.evaluator, device.corners[0])

    def test_close_is_idempotent(self):
        coalescer = RequestCoalescer()
        coalescer.close()
        coalescer.close()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            RequestCoalescer(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            RequestCoalescer(max_wait_s=-1.0)

    def test_stats_shape(self):
        with RequestCoalescer() as coalescer:
            stats = coalescer.stats()
        assert stats == {
            "requests": 0,
            "errors": 0,
            "batches": 0,
            "max_batch": 0,
            "mean_batch": 0.0,
            "dropped_abandoned": 0,
            "dropped_expired": 0,
            "crashed": False,
        }

    def test_failed_request_still_counted(self):
        # Regression: submissions used to be counted only on success, so
        # errored requests were invisible in stats().  A request whose
        # delay gathering raises must show up as one request + one error.
        farm = build_farm(boards=1)
        device = next(iter(farm))
        bogus = OperatingPoint(voltage=9.9, temperature=999.0)
        with RequestCoalescer(max_batch=8, max_wait_s=0.0) as coalescer:
            with pytest.raises(KeyError):
                coalescer.submit(device.evaluator, bogus)
            stats = coalescer.stats()
        assert stats["requests"] == 1
        assert stats["errors"] == 1
        # The request never gathered, so no batch dispatched for it.
        assert stats["batches"] == 0

    def test_mixed_batch_counts_successes_and_errors(self):
        farm = build_farm(boards=2)
        good_device, other = list(farm)
        corner = good_device.corners[0]
        bogus = OperatingPoint(voltage=9.9, temperature=999.0)
        barrier = threading.Barrier(3)
        with RequestCoalescer(max_batch=8, max_wait_s=0.1) as coalescer:

            def good(evaluator) -> None:
                barrier.wait()
                coalescer.submit(evaluator, corner)

            def bad() -> None:
                barrier.wait()
                with pytest.raises(KeyError):
                    coalescer.submit(good_device.evaluator, bogus)

            threads = [
                threading.Thread(target=good, args=(good_device.evaluator,)),
                threading.Thread(target=good, args=(other.evaluator,)),
                threading.Thread(target=bad),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = coalescer.stats()
        assert stats["requests"] == 3
        assert stats["errors"] == 1
        # mean_batch reflects only requests that actually dispatched.
        assert stats["batches"] >= 1
        assert stats["mean_batch"] <= 2.0


class TestOverloadShedding:
    """Abandoned and deadline-expired jobs must not burn batch slots."""

    def test_timed_out_submit_is_shed_before_evaluation(self):
        # Regression: a submit() whose wait timed out used to leave its
        # job in the queue, so the dispatcher computed an answer nobody
        # would ever read — batch capacity burned exactly when it is
        # scarcest.  The job must be marked abandoned and skipped.
        farm = build_farm(boards=1)
        device = next(iter(farm))
        corner = device.corners[0]
        coalescer = RequestCoalescer(max_batch=8, max_wait_s=0.0)
        try:
            release = threading.Event()
            original_dispatch = coalescer._dispatch

            def stalled_dispatch(batch):
                release.wait(timeout=5.0)
                original_dispatch(batch)

            coalescer._dispatch = stalled_dispatch
            with pytest.raises(RuntimeError, match="timed out"):
                coalescer.submit(device.evaluator, corner, timeout=0.05)
            release.set()
            deadline = time.monotonic() + 2.0
            while (
                coalescer.stats()["dropped_abandoned"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            stats = coalescer.stats()
            assert stats["dropped_abandoned"] == 1
            assert stats["errors"] == 1
            # The abandoned job never evaluated: no batch was dispatched,
            # and the device's noise RNG never advanced — the next result
            # is byte-identical to a twin farm's first serial evaluation.
            assert stats["batches"] == 0
            twin = next(iter(build_farm(boards=1)))
            mine = coalescer.submit(device.evaluator, corner)
            assert mine.tobytes() == twin.evaluator.response(corner).tobytes()
        finally:
            coalescer.close()

    def test_expired_deadline_rejected_before_enqueue(self):
        farm = build_farm(boards=1)
        device = next(iter(farm))
        dead = Deadline.after_ms(0.001)
        time.sleep(0.002)
        with RequestCoalescer() as coalescer:
            with pytest.raises(DeadlineExceeded):
                coalescer.submit(
                    device.evaluator, device.corners[0], deadline=dead
                )
            stats = coalescer.stats()
        assert stats["dropped_expired"] == 1
        assert stats["batches"] == 0

    def test_deadline_expiring_in_queue_dropped_at_dispatch(self):
        # White-box: a job whose deadline runs out while queued (before
        # its submitter notices) is shed by the dispatcher with a
        # DeadlineExceeded, not evaluated.
        from repro.serve.coalescer import _Job

        farm = build_farm(boards=1)
        device = next(iter(farm))
        with RequestCoalescer() as coalescer:
            job = _Job(
                device.evaluator,
                device.corners[0],
                deadline=Deadline.after_ms(0.5),
            )
            time.sleep(0.005)
            coalescer._dispatch([job])
            assert job.done.is_set()
            assert isinstance(job.error, DeadlineExceeded)
            assert job.result is None
            assert coalescer.stats()["dropped_expired"] == 1

    def test_live_deadline_passes_through(self):
        farm = build_farm(boards=1)
        device = next(iter(farm))
        corner = device.corners[0]
        twin = next(iter(build_farm(boards=1)))
        with RequestCoalescer() as coalescer:
            bits = coalescer.submit(
                device.evaluator,
                corner,
                deadline=Deadline.after_ms(60_000.0),
            )
        assert bits.tobytes() == twin.evaluator.response(corner).tobytes()


class TestDispatcherCrash:
    """A dispatcher-thread crash must fail fast, not hang the service."""

    def crash_coalescer(self) -> RequestCoalescer:
        coalescer = RequestCoalescer(max_batch=8, max_wait_s=0.0)

        def exploding_dispatch(batch):
            raise ZeroDivisionError("metrics hook went pop")

        coalescer._dispatch = exploding_dispatch
        return coalescer

    def test_pending_jobs_fail_with_clear_error(self):
        # Regression: an exception escaping the dispatcher loop used to
        # kill the thread silently; every later submit() then blocked
        # for its full timeout against a queue nobody was draining.
        farm = build_farm(boards=1)
        device = next(iter(farm))
        coalescer = self.crash_coalescer()
        try:
            with pytest.raises(RuntimeError, match="dispatcher crashed"):
                coalescer.submit(
                    device.evaluator, device.corners[0], timeout=5.0
                )
        finally:
            coalescer.close()

    def test_crash_closes_the_coalescer(self):
        farm = build_farm(boards=1)
        device = next(iter(farm))
        coalescer = self.crash_coalescer()
        try:
            with pytest.raises(RuntimeError):
                coalescer.submit(
                    device.evaluator, device.corners[0], timeout=5.0
                )
            assert coalescer.closed is True
            stats = coalescer.stats()
            assert stats["crashed"] is True
            assert stats["errors"] >= 1
            # Later submissions fail immediately with the crash reason,
            # not after blocking out their full timeout.
            started = time.monotonic()
            with pytest.raises(RuntimeError, match="ZeroDivisionError"):
                coalescer.submit(
                    device.evaluator, device.corners[0], timeout=30.0
                )
            assert time.monotonic() - started < 1.0
        finally:
            coalescer.close()

    def test_close_after_crash_is_clean(self):
        farm = build_farm(boards=1)
        device = next(iter(farm))
        coalescer = self.crash_coalescer()
        with pytest.raises(RuntimeError):
            coalescer.submit(device.evaluator, device.corners[0], timeout=5.0)
        coalescer.close()
        coalescer.close()
