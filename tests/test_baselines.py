"""Unit tests of the baseline PUF schemes."""

import numpy as np
import pytest

from repro.baselines.maiti_schaumont import (
    MaitiSchaumontPUF,
    select_best_word,
    select_best_word_exhaustive,
)
from repro.baselines.one_out_of_eight import OneOutOfEightPUF
from repro.baselines.threshold import (
    reliable_bit_count,
    yield_vs_threshold,
)
from repro.baselines.traditional import traditional_puf
from repro.core.pairing import RingAllocation
from repro.variation.environment import NOMINAL_OPERATING_POINT


def static_provider(delays):
    delays = np.asarray(delays, dtype=float)

    def provider(op):
        return delays

    return provider


class TestOneOutOfEight:
    def make_puf(self, rng, rings=16, stages=3):
        delays = rng.normal(1.0, 0.02, rings * stages)
        allocation = RingAllocation(stage_count=stages, ring_count=rings)
        return (
            OneOutOfEightPUF(
                delay_provider=static_provider(delays), allocation=allocation
            ),
            delays,
            allocation,
        )

    def test_bit_count_is_one_per_8_rings(self, rng):
        puf, _, _ = self.make_puf(rng)
        assert puf.bit_count == 2

    def test_chooses_extreme_pair(self, rng):
        puf, delays, allocation = self.make_puf(rng)
        enrollment = puf.enroll()
        totals = allocation.ring_delay_matrix(delays).sum(axis=1)
        group = totals[:8]
        low, high = enrollment.chosen_pairs[0]
        assert {low, high} == {int(np.argmax(group)), int(np.argmin(group))}

    def test_margin_is_max_minus_min(self, rng):
        puf, delays, allocation = self.make_puf(rng)
        enrollment = puf.enroll()
        totals = allocation.ring_delay_matrix(delays).sum(axis=1)
        assert enrollment.margins[0] == pytest.approx(
            totals[:8].max() - totals[:8].min()
        )

    def test_response_stable_without_noise(self, rng):
        puf, _, _ = self.make_puf(rng)
        enrollment = puf.enroll()
        response = puf.response(NOMINAL_OPERATING_POINT, enrollment)
        assert np.array_equal(response, enrollment.bits)

    def test_margin_dominates_random_pairing(self, rng):
        # The 1-of-8 margin must beat the expected |difference| of a fixed
        # pair (that's the whole point of the scheme).
        puf, delays, allocation = self.make_puf(rng, rings=64)
        enrollment = puf.enroll()
        totals = allocation.ring_delay_matrix(delays).sum(axis=1)
        fixed_pair_margins = np.abs(totals[0::2] - totals[1::2])
        assert np.mean(enrollment.margins) > np.mean(fixed_pair_margins)

    def test_enrollment_alignment_enforced(self, rng):
        puf, _, _ = self.make_puf(rng)
        enrollment = puf.enroll()
        from repro.baselines.one_out_of_eight import GroupEnrollment

        with pytest.raises(ValueError, match="align"):
            GroupEnrollment(
                operating_point=enrollment.operating_point,
                chosen_pairs=enrollment.chosen_pairs,
                bits=enrollment.bits[:-1],
                margins=enrollment.margins,
            )


class TestThreshold:
    def test_reliable_bit_count(self):
        margins = np.array([-5.0, 1.0, 3.0, -2.0])
        assert reliable_bit_count(margins, 0.0) == 4
        assert reliable_bit_count(margins, 2.0) == 3
        assert reliable_bit_count(margins, 10.0) == 0

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            reliable_bit_count(np.ones(3), -1.0)

    def test_yield_curve_monotone(self, rng):
        margins = rng.normal(0.0, 1.0, 500)
        sweep = yield_vs_threshold(margins, np.linspace(0, 3, 13))
        assert np.all(np.diff(sweep.counts) <= 0)
        assert sweep.counts[0] == 500
        assert sweep.total_bits == 500

    def test_utilisation_percent(self, rng):
        margins = rng.normal(0.0, 1.0, 100)
        sweep = yield_vs_threshold(margins, np.array([0.0]))
        assert sweep.utilisation_percent()[0] == pytest.approx(100.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            yield_vs_threshold(np.ones(3), np.array([]))
        with pytest.raises(ValueError):
            yield_vs_threshold(np.ones(3), np.array([-0.5]))


class TestMaitiSchaumont:
    def test_best_word_is_exhaustive_optimum(self, rng):
        for _ in range(50):
            stages = int(rng.integers(1, 6))
            top = rng.normal(1.0, 0.05, (stages, 2))
            bottom = rng.normal(1.0, 0.05, (stages, 2))
            fast = select_best_word(top, bottom)
            brute = select_best_word_exhaustive(top, bottom)
            assert abs(fast.margin) == pytest.approx(abs(brute.margin))

    def test_word_applies_to_both_rings(self, rng):
        stages = 3
        top = rng.normal(1.0, 0.05, (stages, 2))
        bottom = rng.normal(1.0, 0.05, (stages, 2))
        selection = select_best_word(top, bottom)
        idx = np.arange(stages)
        choices = np.array(selection.word)
        margin = float(
            np.sum(top[idx, choices]) - np.sum(bottom[idx, choices])
        )
        assert selection.margin == pytest.approx(margin)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            select_best_word(np.ones((3, 3)), np.ones((3, 3)))
        with pytest.raises(ValueError):
            select_best_word(np.ones((3, 2)), np.ones((4, 2)))
        with pytest.raises(ValueError):
            select_best_word(np.ones((0, 2)), np.ones((0, 2)))

    def test_exhaustive_guard(self):
        with pytest.raises(ValueError, match="16"):
            select_best_word_exhaustive(np.ones((17, 2)), np.ones((17, 2)))

    def test_puf_lifecycle(self, rng):
        tensor = rng.normal(1.0, 0.05, (6, 2, 3, 2))

        def provider(op):
            return tensor

        puf = MaitiSchaumontPUF(stage_delay_provider=provider)
        enrollment = puf.enroll()
        assert enrollment.bit_count == 6
        response = puf.response(NOMINAL_OPERATING_POINT, enrollment)
        assert np.array_equal(response, enrollment.bits)

    def test_provider_shape_validation(self):
        puf = MaitiSchaumontPUF(stage_delay_provider=lambda op: np.ones((2, 3)))
        with pytest.raises(ValueError, match="shape"):
            puf.enroll()

    def test_tensor_from_units(self):
        units = np.arange(24.0)
        tensor = MaitiSchaumontPUF.tensor_from_units(units, stage_count=3)
        assert tensor.shape == (2, 2, 3, 2)
        # first ring of first pair = units 0..5
        assert tensor[0, 0].ravel().tolist() == [0, 1, 2, 3, 4, 5]

    def test_tensor_from_units_validation(self):
        with pytest.raises(ValueError):
            MaitiSchaumontPUF.tensor_from_units(np.arange(4.0), stage_count=3)
        with pytest.raises(ValueError):
            MaitiSchaumontPUF.tensor_from_units(np.arange(24.0), stage_count=0)


class TestTraditionalFactory:
    def test_builds_traditional_method(self, rng):
        delays = rng.normal(1.0, 0.02, 30)
        allocation = RingAllocation(stage_count=3, ring_count=10)
        puf = traditional_puf(static_provider(delays), allocation)
        assert puf.method == "traditional"
        enrollment = puf.enroll()
        for selection in enrollment.selections:
            assert selection.selected_count == 3
