"""Unit and property tests of the error-correcting codes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.ecc import BCHCode, RepetitionCode


class TestRepetitionCode:
    def test_parameters(self):
        code = RepetitionCode(5)
        assert (code.n, code.k, code.t) == (5, 1, 2)
        assert code.rate == pytest.approx(0.2)

    def test_rejects_even_repetitions(self):
        with pytest.raises(ValueError):
            RepetitionCode(4)
        with pytest.raises(ValueError):
            RepetitionCode(-3)

    def test_round_trip(self):
        code = RepetitionCode(3)
        for bit in (False, True):
            encoded = code.encode(np.array([bit]))
            assert code.decode(encoded)[0] == bit

    def test_corrects_up_to_t(self):
        code = RepetitionCode(5)
        encoded = code.encode(np.array([True]))
        encoded[:2] ^= True
        assert code.decode(encoded)[0] is np.True_

    def test_block_round_trip_with_errors(self, rng):
        code = RepetitionCode(7)
        message = rng.integers(0, 2, 16).astype(bool)
        encoded = code.encode_block(message)
        # Flip t bits in every block.
        for block in range(16):
            positions = rng.choice(7, size=3, replace=False) + block * 7
            encoded[positions] ^= True
        assert np.array_equal(code.decode_block(encoded), message)

    def test_block_length_validation(self):
        code = RepetitionCode(3)
        with pytest.raises(ValueError):
            code.decode_block(np.zeros(4, dtype=bool))

    def test_length_validation(self):
        code = RepetitionCode(3)
        with pytest.raises(ValueError):
            code.encode(np.zeros(2, dtype=bool))
        with pytest.raises(ValueError):
            code.decode(np.zeros(2, dtype=bool))


class TestBCHCode:
    @pytest.mark.parametrize(
        "m,t,expected_k",
        [(4, 1, 11), (4, 2, 7), (4, 3, 5), (5, 3, 16), (6, 5, 36), (7, 9, 71)],
    )
    def test_standard_dimensions(self, m, t, expected_k):
        # Textbook (n, k) pairs of binary primitive BCH codes.
        code = BCHCode(m=m, t=t)
        assert code.n == 2**m - 1
        assert code.k == expected_k

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            BCHCode(m=4, t=0)
        with pytest.raises(ValueError):
            BCHCode(m=4, t=8)  # 2t >= n: the generator swallows every bit

    def test_systematic_encoding(self, rng):
        code = BCHCode(m=5, t=3)
        message = rng.integers(0, 2, code.k).astype(bool)
        codeword = code.encode(message)
        assert np.array_equal(codeword[code.n - code.k :], message)

    def test_zero_message_zero_codeword(self):
        code = BCHCode(m=4, t=2)
        assert not code.encode(np.zeros(code.k, dtype=bool)).any()

    def test_error_free_decode(self, rng):
        code = BCHCode(m=5, t=3)
        message = rng.integers(0, 2, code.k).astype(bool)
        assert np.array_equal(code.decode(code.encode(message)), message)

    @given(st.integers(0, 3), st.integers(0, 2**16 - 1))
    def test_corrects_any_t_errors(self, error_count, seed):
        code = BCHCode(m=5, t=3)
        rng = np.random.default_rng(seed)
        message = rng.integers(0, 2, code.k).astype(bool)
        codeword = code.encode(message)
        positions = rng.choice(code.n, size=error_count, replace=False)
        corrupted = codeword.copy()
        corrupted[positions] ^= True
        assert np.array_equal(code.decode(corrupted), message)

    def test_detects_overload(self, rng):
        # Far beyond t errors must either raise or decode to some codeword —
        # but a random 10-error pattern around a t=2 code usually raises.
        code = BCHCode(m=4, t=2)
        message = rng.integers(0, 2, code.k).astype(bool)
        codeword = code.encode(message)
        raised = 0
        for trial in range(30):
            trial_rng = np.random.default_rng(trial)
            corrupted = codeword.copy()
            positions = trial_rng.choice(code.n, size=7, replace=False)
            corrupted[positions] ^= True
            try:
                decoded = code.decode(corrupted)
                # if it decodes, it must be a valid codeword's message
                assert len(decoded) == code.k
            except ValueError:
                raised += 1
        assert raised > 0

    def test_codewords_satisfy_generator_divisibility(self, rng):
        code = BCHCode(m=4, t=2)
        message = rng.integers(0, 2, code.k).astype(bool)
        codeword = code.encode(message).astype(np.uint8)
        # Syndromes of a clean codeword are all zero.
        assert all(s == 0 for s in code._syndromes(codeword))

    def test_length_validation(self):
        code = BCHCode(m=4, t=1)
        with pytest.raises(ValueError):
            code.encode(np.zeros(code.k + 1, dtype=bool))
        with pytest.raises(ValueError):
            code.decode(np.zeros(code.n - 1, dtype=bool))

    def test_minimum_distance_at_least_design(self, rng):
        # Random pairs of codewords differ in >= 2t+1 positions.
        code = BCHCode(m=4, t=2)
        for _ in range(50):
            m1 = rng.integers(0, 2, code.k).astype(bool)
            m2 = rng.integers(0, 2, code.k).astype(bool)
            if np.array_equal(m1, m2):
                continue
            distance = int(np.sum(code.encode(m1) != code.encode(m2)))
            assert distance >= 2 * code.t + 1
