"""Tests of the device-aging model and its PUF-level consequences."""

import numpy as np
import pytest

from repro.core.puf import ChipROPUF
from repro.silicon.aging import AgingModel, age_chip
from repro.silicon.fabrication import FabricationProcess
from repro.variation.environment import NOMINAL_OPERATING_POINT


class TestAgingModel:
    def test_zero_years_no_change(self, rng):
        model = AgingModel()
        severities = model.sample_severities(10, rng)
        assert np.allclose(model.slowdown(severities, 0.0), 1.0)

    def test_reference_point_slowdown(self, rng):
        model = AgingModel(mean_severity=0.05, severity_sigma=0.0)
        severities = model.sample_severities(100, rng)
        factors = model.slowdown(severities, model.reference_years)
        assert np.allclose(factors, 1.05)

    def test_monotone_in_time(self, rng):
        model = AgingModel()
        severities = model.sample_severities(20, rng)
        early = model.slowdown(severities, 1.0)
        late = model.slowdown(severities, 20.0)
        assert np.all(late >= early)

    def test_sublinear_power_law(self, rng):
        model = AgingModel(mean_severity=0.05, severity_sigma=0.0)
        severities = model.sample_severities(1, rng)
        one_year = model.slowdown(severities, 1.0)[0] - 1.0
        four_years = model.slowdown(severities, 4.0)[0] - 1.0
        # exponent 0.2: 4x the time gives ~1.32x the drift, far below 4x.
        assert four_years < 2.0 * one_year

    def test_severities_clipped_non_negative(self, rng):
        model = AgingModel(mean_severity=0.0, severity_sigma=0.05)
        severities = model.sample_severities(1000, rng)
        assert np.all(severities >= 0.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AgingModel(mean_severity=-0.1)
        with pytest.raises(ValueError):
            AgingModel(exponent=0.0)
        with pytest.raises(ValueError):
            AgingModel(reference_years=0.0)

    def test_negative_years_rejected(self, rng):
        model = AgingModel()
        with pytest.raises(ValueError):
            model.slowdown(model.sample_severities(2, rng), -1.0)


class TestAgeChip:
    def test_aged_chip_is_slower(self, chip, rng):
        aged = age_chip(chip, 10.0, rng)
        assert np.all(aged.inverter_base >= chip.inverter_base)
        assert np.all(aged.mux_bypass_base >= chip.mux_bypass_base)

    def test_original_untouched(self, chip, rng):
        before = chip.inverter_base.copy()
        age_chip(chip, 10.0, rng)
        assert np.array_equal(chip.inverter_base, before)

    def test_name_annotated(self, chip, rng):
        aged = age_chip(chip, 5.0, rng)
        assert "@5y" in aged.name

    def test_zero_years_identity_delays(self, chip, rng):
        aged = age_chip(chip, 0.0, rng)
        assert np.array_equal(aged.inverter_base, chip.inverter_base)

    def test_configurable_outlasts_traditional(self):
        fab = FabricationProcess()
        rng = np.random.default_rng(3)
        flips = {"case2": 0, "traditional": 0}
        for index in range(4):
            chip = fab.fabricate(120, rng, name=f"wear{index}")
            for method in flips:
                puf = ChipROPUF.deploy(chip, stage_count=5, method=method)
                enrollment = puf.enroll()
                aged = age_chip(chip, 15.0, np.random.default_rng(index))
                aged_puf = ChipROPUF(
                    chip=aged,
                    allocation=puf.allocation,
                    method=method,
                    measurer=puf.measurer,
                )
                response = aged_puf.response(NOMINAL_OPERATING_POINT, enrollment)
                flips[method] += int(np.sum(response != enrollment.bits))
        assert flips["case2"] <= flips["traditional"]
