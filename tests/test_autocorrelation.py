"""Tests of the bit-autocorrelation metric."""

import numpy as np
import pytest

from repro.metrics.autocorrelation import (
    autocorrelation_report,
    bit_autocorrelation,
)


class TestBitAutocorrelation:
    def test_alternating_stream_is_anticorrelated(self):
        bits = np.array([0, 1] * 50, dtype=bool)
        assert bit_autocorrelation(bits, 1) == pytest.approx(-1.0)
        assert bit_autocorrelation(bits, 2) == pytest.approx(1.0)

    def test_repeated_blocks_positively_correlated(self, rng):
        base = rng.integers(0, 2, 100)
        bits = np.repeat(base, 4).astype(bool)
        assert bit_autocorrelation(bits, 1) > 0.5

    def test_random_stream_near_zero(self, rng):
        bits = rng.integers(0, 2, 20000).astype(bool)
        for lag in (1, 3, 7):
            assert abs(bit_autocorrelation(bits, lag)) < 0.05

    def test_constant_stream_returns_zero(self):
        bits = np.ones(50, dtype=bool)
        assert bit_autocorrelation(bits, 1) == 0.0

    def test_validation(self, rng):
        bits = rng.integers(0, 2, 10).astype(bool)
        with pytest.raises(ValueError):
            bit_autocorrelation(bits, 0)
        with pytest.raises(ValueError):
            bit_autocorrelation(bits, 9)


class TestAutocorrelationReport:
    def test_random_population_is_clean(self, rng):
        bits = rng.integers(0, 2, (50, 128)).astype(bool)
        report = autocorrelation_report(bits)
        assert report.clean, report.flagged_lags

    def test_correlated_population_is_flagged(self, rng):
        base = rng.integers(0, 2, (50, 32))
        bits = np.repeat(base, 4, axis=1).astype(bool)
        report = autocorrelation_report(bits)
        assert not report.clean
        assert 1 in report.flagged_lags

    def test_detects_distillation_failure(self):
        # The A9 scenario in miniature: correlated mismatch -> correlated
        # PUF bits even after distillation.
        from repro.datasets.vtlike import VTLikeConfig, generate_vt_like
        from repro.experiments.common import PipelineConfig, response_matrix
        from repro.variation.process import (
            ProcessParameters,
            ProcessVariationModel,
        )

        def bits_for(correlation):
            config = VTLikeConfig(
                nominal_boards=12,
                swept_boards=0,
                ro_count=256,
                grid_columns=16,
                grid_rows=16,
                process=ProcessVariationModel(
                    ProcessParameters(correlation_length=correlation)
                ),
                seed=77,
            )
            dataset = generate_vt_like(config)
            return response_matrix(
                dataset.nominal_boards,
                PipelineConfig(stage_count=3, method="case1"),
                dataset.nominal,
            )

        clean = autocorrelation_report(bits_for(0.0), max_lag=4)
        dirty = autocorrelation_report(bits_for(0.5), max_lag=4)
        # Smooth mismatch anti-correlates consecutive pair differences
        # (the shared middle ring flips sign), so compare magnitudes.
        assert abs(dirty.mean_autocorrelation[0]) > abs(
            clean.mean_autocorrelation[0]
        ) + 0.1
        assert not dirty.clean

    def test_too_short_streams_rejected(self, rng):
        with pytest.raises(ValueError):
            autocorrelation_report(rng.integers(0, 2, (5, 8)), max_lag=8)
