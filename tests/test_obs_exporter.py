"""Exporter tests: rolling-window rates with an injected clock, golden
exposition documents (JSON and Prometheus text), and the HTTP sidecar."""

import json
import urllib.request

import pytest

from repro import obs
from repro.obs.exporter import (
    DEFAULT_WINDOWS,
    EXPOSITION_SCHEMA,
    MetricsExporter,
    prometheus_text,
    start_http_exporter,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable_metrics()
    obs.reset_metrics()
    yield
    obs.disable_metrics()
    obs.reset_metrics()


class _FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestRollingWindows:
    def test_first_scrape_has_no_rates(self):
        exporter = MetricsExporter(clock=_FakeClock())
        doc = exporter.collect()
        assert doc["rates"] == {"1s": {}, "10s": {}, "60s": {}}

    def test_rates_diff_cumulative_counters(self):
        obs.enable_metrics()
        clock = _FakeClock()
        exporter = MetricsExporter(clock=clock)
        obs.counter_add("serve.requests.auth", 10.0)
        exporter.collect()  # baseline at t=1000
        clock.now += 1.0
        obs.counter_add("serve.requests.auth", 5.0)
        doc = exporter.collect()
        assert doc["rates"]["1s"]["serve.requests.auth"] == pytest.approx(5.0)
        assert doc["rates"]["60s"]["serve.requests.auth"] == pytest.approx(5.0)

    def test_windows_use_their_own_baseline(self):
        obs.enable_metrics()
        clock = _FakeClock()
        exporter = MetricsExporter(clock=clock)
        exporter.collect()  # t=1000, counter=0
        for _ in range(9):
            clock.now += 1.0
            obs.counter_add("c", 1.0)
            exporter.collect()
        clock.now += 1.0
        obs.counter_add("c", 100.0)
        doc = exporter.collect()  # t=1010, counter=109
        # 1s window: from the t=1009 sample (counter 9) -> 100/s.
        assert doc["rates"]["1s"]["c"] == pytest.approx(100.0)
        # 10s window: from the t=1000 sample (counter 0) -> 10.9/s.
        assert doc["rates"]["10s"]["c"] == pytest.approx(10.9)

    def test_counter_born_mid_window_rates_from_zero(self):
        obs.enable_metrics()
        clock = _FakeClock()
        exporter = MetricsExporter(clock=clock)
        exporter.collect()
        clock.now += 2.0
        obs.counter_add("newborn", 6.0)
        doc = exporter.collect()
        assert doc["rates"]["10s"]["newborn"] == pytest.approx(3.0)

    def test_history_stays_bounded(self):
        clock = _FakeClock()
        exporter = MetricsExporter(clock=clock)
        for _ in range(500):
            clock.now += 1.0
            exporter.collect()
        # One sample per second, pruned past the 60 s window.
        assert len(exporter._samples) <= 62

    def test_rejects_unsorted_windows(self):
        with pytest.raises(ValueError, match="ascending"):
            MetricsExporter(windows=(10.0, 1.0))


class TestJSONExposition:
    def test_document_shape(self):
        obs.enable_metrics()
        obs.counter_add("serve.requests.auth", 3.0)
        obs.gauge_set("serve.inflight", 2.0)
        for value in (1.0, 2.0, 3.0, 4.0):
            obs.histogram_observe("serve.latency_ms.auth", value)
        doc = MetricsExporter(clock=_FakeClock()).collect()
        assert doc["schema"] == EXPOSITION_SCHEMA
        assert doc["counters"] == {"serve.requests.auth": 3.0}
        assert doc["gauges"] == {"serve.inflight": 2.0}
        histogram = doc["histograms"]["serve.latency_ms.auth"]
        assert histogram["count"] == 4
        assert histogram["mean"] == pytest.approx(2.5)
        assert histogram["p50"] == pytest.approx(2.0, rel=0.02)
        assert histogram["p99"] == pytest.approx(4.0, rel=0.02)
        assert set(DEFAULT_WINDOWS) == {1.0, 10.0, 60.0}
        json.dumps(doc)  # exposition must be plain JSON

    def test_quantiles_match_registry(self):
        obs.enable_metrics()
        for value in range(1, 101):
            obs.histogram_observe("h", float(value))
        doc = MetricsExporter(clock=_FakeClock()).collect()
        live = obs.histogram_quantiles("h")
        assert doc["histograms"]["h"]["p99"] == live["p99"]


class TestPrometheusGolden:
    """Golden output: the text format is a wire contract, pinned exactly."""

    def test_golden_document(self):
        exposition = {
            "counters": {"serve.requests.auth": 42.0, "cache.hits": 3.5},
            "gauges": {"serve.inflight": 2.0},
            "histograms": {
                "serve.latency_ms.auth": {
                    "count": 3,
                    "total": 6.75,
                    "min": 1.0,
                    "max": 4.0,
                    "mean": 2.25,
                    "p50": 1.75,
                    "p90": 4.0,
                    "p99": 4.0,
                },
            },
        }
        assert prometheus_text(exposition) == (
            "# TYPE ropuf_serve_requests_auth counter\n"
            "ropuf_serve_requests_auth 42\n"
            "# TYPE ropuf_cache_hits counter\n"
            "ropuf_cache_hits 3.5\n"
            "# TYPE ropuf_serve_inflight gauge\n"
            "ropuf_serve_inflight 2\n"
            "# TYPE ropuf_serve_latency_ms_auth summary\n"
            'ropuf_serve_latency_ms_auth{quantile="0.5"} 1.75\n'
            'ropuf_serve_latency_ms_auth{quantile="0.9"} 4\n'
            'ropuf_serve_latency_ms_auth{quantile="0.99"} 4\n'
            "ropuf_serve_latency_ms_auth_sum 6.75\n"
            "ropuf_serve_latency_ms_auth_count 3\n"
        )

    def test_name_sanitization(self):
        text = prometheus_text(
            {"counters": {"noise.elements.sweep-v1": 1.0}}
        )
        assert "ropuf_noise_elements_sweep_v1 1" in text

    def test_end_to_end_from_registry(self):
        obs.enable_metrics()
        obs.counter_add("c", 2.0)
        obs.histogram_observe("h", 5.0)
        text = MetricsExporter(clock=_FakeClock()).prometheus()
        assert "# TYPE ropuf_c counter" in text
        assert "ropuf_c 2" in text
        assert "# TYPE ropuf_h summary" in text
        assert "ropuf_h_count 1" in text


class TestServeMetricsVerb:
    """The exporter mounted on the serve protocol as the ``metrics`` verb."""

    def _service(self):
        from repro.serve import AuthService, CRPStore, DeviceFarm, FleetConfig

        farm = DeviceFarm.from_config(FleetConfig(boards=1))
        service = AuthService(farm, CRPStore(None))
        service.enroll_fleet()
        return service

    def test_json_exposition(self):
        obs.enable_metrics()
        service = self._service()
        try:
            service.handle({"op": "ping"})
            response = service.handle({"op": "metrics"})
            assert response["ok"] is True
            doc = response["metrics"]
            assert doc["schema"] == EXPOSITION_SCHEMA
            assert doc["counters"]["serve.requests.ping"] == 1.0
            assert "serve.latency_ms.ping" in doc["histograms"]
            json.dumps(response)
        finally:
            service.close()

    def test_prometheus_exposition(self):
        obs.enable_metrics()
        service = self._service()
        try:
            service.handle({"op": "ping"})
            response = service.handle(
                {"op": "metrics", "format": "prometheus"}
            )
            assert response["ok"] is True
            assert "ropuf_serve_requests_ping 1" in response["text"]
        finally:
            service.close()

    def test_unknown_format_rejected(self):
        service = self._service()
        try:
            response = service.handle({"op": "metrics", "format": "xml"})
            assert response["ok"] is False
            assert response["error_type"] == "BadRequest"
        finally:
            service.close()


class TestHTTPSidecar:
    def test_scrape_both_formats(self):
        obs.enable_metrics()
        obs.counter_add("sidecar.hits", 7.0)
        server = start_http_exporter(MetricsExporter(), port=0)
        try:
            host, port = server.server_address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics"
            ) as response:
                assert response.status == 200
                assert "version=0.0.4" in response.headers["Content-Type"]
                assert b"ropuf_sidecar_hits 7" in response.read()
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics.json"
            ) as response:
                doc = json.loads(response.read())
                assert doc["counters"]["sidecar.hits"] == 7.0
        finally:
            server.shutdown()
            server.server_close()

    def test_unknown_path_404s(self):
        server = start_http_exporter(MetricsExporter(), port=0)
        try:
            host, port = server.server_address
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"http://{host}:{port}/nope")
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
