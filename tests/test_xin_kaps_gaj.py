"""Tests of the Xin-Kaps-Gaj per-stage-variant configurable RO PUF."""

import numpy as np
import pytest

from repro.baselines.maiti_schaumont import select_best_word
from repro.baselines.xin_kaps_gaj import (
    XinKapsGajPUF,
    select_best_variant_word,
)
from repro.variation.environment import NOMINAL_OPERATING_POINT


class TestSelectBestVariantWord:
    def test_reduces_to_maiti_schaumont_with_two_variants(self, rng):
        for _ in range(30):
            top = rng.normal(1.0, 0.05, (4, 2))
            bottom = rng.normal(1.0, 0.05, (4, 2))
            generalised = select_best_variant_word(top, bottom)
            special = select_best_word(top, bottom)
            assert abs(generalised.margin) == pytest.approx(abs(special.margin))

    def test_exhaustive_optimality_small(self, rng):
        from itertools import product

        top = rng.normal(1.0, 0.05, (3, 4))
        bottom = rng.normal(1.0, 0.05, (3, 4))
        fast = select_best_variant_word(top, bottom)
        best = 0.0
        idx = np.arange(3)
        for word in product(range(4), repeat=3):
            choices = np.array(word)
            margin = float(
                np.sum(top[idx, choices]) - np.sum(bottom[idx, choices])
            )
            best = max(best, abs(margin))
        assert abs(fast.margin) == pytest.approx(best)

    def test_configuration_count(self, rng):
        top = rng.normal(1.0, 0.05, (3, 4))
        selection = select_best_variant_word(top, top * 1.01)
        assert selection.configurations == 4**3  # 64; [15]'s 256 is 4 stages

    def test_more_variants_beat_fewer(self, rng):
        # On the same silicon, exploring 4 variants per stage must achieve
        # at least the margin of exploring the first 2.
        for _ in range(30):
            top = rng.normal(1.0, 0.05, (5, 4))
            bottom = rng.normal(1.0, 0.05, (5, 4))
            wide = select_best_variant_word(top, bottom)
            narrow = select_best_variant_word(top[:, :2], bottom[:, :2])
            assert abs(wide.margin) >= abs(narrow.margin) - 1e-12

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            select_best_variant_word(np.ones((3, 1)), np.ones((3, 1)))
        with pytest.raises(ValueError):
            select_best_variant_word(np.ones((3, 2)), np.ones((4, 2)))


class TestXinKapsGajPUF:
    def test_lifecycle(self, rng):
        tensor = rng.normal(1.0, 0.05, (5, 2, 3, 4))
        puf = XinKapsGajPUF(stage_delay_provider=lambda op: tensor)
        enrollment = puf.enroll()
        assert enrollment.bit_count == 5
        response = puf.response(NOMINAL_OPERATING_POINT, enrollment)
        assert np.array_equal(response, enrollment.bits)

    def test_margins_beat_maiti_schaumont_on_same_units(self, rng):
        units = rng.normal(1.0, 0.05, 2 * 2 * 3 * 4 * 8)
        xkg_tensor = XinKapsGajPUF.tensor_from_units(
            units, stage_count=3, variants_per_stage=4
        )
        puf = XinKapsGajPUF(stage_delay_provider=lambda op: xkg_tensor)
        enrollment = puf.enroll()
        # Same units regrouped as 6-stage 2-variant (Maiti-Schaumont-like):
        ms_tensor = XinKapsGajPUF.tensor_from_units(
            units, stage_count=6, variants_per_stage=2
        )
        ms_puf = XinKapsGajPUF(stage_delay_provider=lambda op: ms_tensor)
        ms_enrollment = ms_puf.enroll()
        # The wider configuration space yields larger normalised margins
        # (per selected inverter) on average.
        xkg_norm = np.mean(np.abs(enrollment.margins)) / 3
        ms_norm = np.mean(np.abs(ms_enrollment.margins)) / 6
        assert xkg_norm > ms_norm

    def test_provider_shape_validation(self):
        puf = XinKapsGajPUF(stage_delay_provider=lambda op: np.ones((2, 3)))
        with pytest.raises(ValueError):
            puf.enroll()

    def test_tensor_from_units(self):
        tensor = XinKapsGajPUF.tensor_from_units(
            np.arange(48.0), stage_count=3, variants_per_stage=4
        )
        assert tensor.shape == (2, 2, 3, 4)
        assert tensor[0, 0, 0].tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_tensor_validation(self):
        with pytest.raises(ValueError):
            XinKapsGajPUF.tensor_from_units(np.arange(5.0), stage_count=3)
        with pytest.raises(ValueError):
            XinKapsGajPUF.tensor_from_units(
                np.arange(48.0), stage_count=3, variants_per_stage=1
            )
