"""Tests of the fault-tolerant measurement schemes: overdetermined
leave-one-out with residual-based localization, robust least squares, and
median-of-k chain delays."""

import numpy as np
import pytest

from repro import obs
from repro.core.measurement import (
    DelayMeasurer,
    leave_one_out_vectors,
    measure_ddiffs_leave_one_out,
    measure_ddiffs_overdetermined,
    overdetermined_vectors,
    robust_least_squares,
)
from repro.core.ring import ConfigurableRO
from repro.faults import CounterGlitch, Dropout, FaultPlan
from repro.variation.noise import GaussianNoise, NoiselessMeasurement

STAGES = 8
NOISE_SIGMA = 5e-4


@pytest.fixture()
def ring(chip):
    return ConfigurableRO(chip=chip, unit_indices=np.arange(STAGES))


def noisy_measurer(seed=0, sigma=NOISE_SIGMA, repeats=1):
    return DelayMeasurer(
        noise=GaussianNoise(relative_sigma=sigma),
        repeats=repeats,
        rng=np.random.default_rng(seed),
    )


def build_design(stage_count, extra=None):
    configs = overdetermined_vectors(stage_count, extra)
    matrix = np.stack([c.as_array().astype(float) for c in configs])
    return configs, np.column_stack([np.ones(len(configs)), matrix])


def synthetic_system(rng, stage_count=STAGES, extra=None, sigma=1e-3):
    """A random (params, design, noisy measurements) triple."""
    _, design = build_design(stage_count, extra)
    params = np.concatenate(
        [[10.0 + rng.normal(0, 0.5)], rng.normal(1.0, 0.05, stage_count)]
    )
    clean = design @ params
    measured = clean + rng.normal(0.0, sigma, len(clean))
    return params, design, measured


class TestOverdeterminedVectors:
    def test_default_doubles_the_system(self):
        vectors = overdetermined_vectors(STAGES)
        assert len(vectors) == 2 * STAGES + 1

    def test_prefix_is_the_loo_set(self):
        vectors = overdetermined_vectors(STAGES, extra=3)
        loo = leave_one_out_vectors(STAGES)
        assert [v.to_string() for v in vectors[: STAGES + 1]] == [
            v.to_string() for v in loo
        ]

    def test_rows_are_distinct(self):
        vectors = overdetermined_vectors(6)
        strings = [v.to_string() for v in vectors]
        assert len(strings) == len(set(strings))

    @pytest.mark.parametrize("stage_count", [4, 5, 6, 8])
    def test_every_stage_dropped_by_three_rows(self, stage_count):
        # The identifiability requirement: the fault direction of stage j
        # is supported only on rows dropping j, so >= 3 such rows make a
        # single faulted row uniquely attributable.
        vectors = overdetermined_vectors(stage_count)
        drops = np.zeros(stage_count, dtype=int)
        for vector in vectors:
            drops += ~np.asarray(vector.as_array(), dtype=bool)
        assert np.all(drops >= 3)

    def test_extra_zero_is_the_square_system(self):
        assert len(overdetermined_vectors(5, extra=0)) == 6

    def test_rejects_impossible_extra(self):
        # 3 stages offer 2**3 - 3 - 1 = 4 redundancy vectors.
        assert len(overdetermined_vectors(3, extra=4)) == 8
        with pytest.raises(ValueError, match="redundancy"):
            overdetermined_vectors(3, extra=5)
        with pytest.raises(ValueError):
            overdetermined_vectors(4, extra=-1)


class TestRobustLeastSquares:
    def test_square_system_passthrough(self, rng):
        params, design, measured = synthetic_system(rng, extra=0, sigma=0.0)
        solution, flagged, residuals, rms = robust_least_squares(design, measured)
        assert np.allclose(solution, params, atol=1e-9)
        assert flagged.size == 0
        assert rms < 1e-9

    def test_clean_overdetermined_rarely_flags(self, rng):
        false_positives = 0
        for _ in range(30):
            _, design, measured = synthetic_system(rng)
            _, flagged, _, _ = robust_least_squares(design, measured)
            false_positives += flagged.size
        # PRESS-based re-estimation keeps clean-row rejection ~1%.
        assert false_positives <= len(design) * 30 * 0.05

    def test_single_gross_fault_localized_and_excised(self, rng):
        params, design, measured = synthetic_system(rng)
        measured = measured.copy()
        measured[4] *= 5.0
        solution, flagged, residuals, _ = robust_least_squares(design, measured)
        assert 4 in flagged.tolist()
        assert flagged.size <= 2  # at most one extra conservative rejection
        assert np.allclose(solution, params, atol=1e-2)
        assert np.nanargmax(np.abs(residuals)) == 4

    def test_dropout_rows_flagged_not_fatal(self, rng):
        params, design, measured = synthetic_system(rng)
        measured = measured.copy()
        measured[2] = np.nan
        measured[9] = np.nan
        solution, flagged, residuals, _ = robust_least_squares(design, measured)
        assert {2, 9}.issubset(set(flagged.tolist()))
        assert np.isnan(residuals[2]) and np.isnan(residuals[9])
        assert np.allclose(solution, params, atol=1e-2)

    def test_too_few_finite_rows_raises(self, rng):
        _, design, measured = synthetic_system(rng, extra=0)
        measured = measured.copy()
        measured[:3] = np.nan
        with pytest.raises(ValueError, match="finite"):
            robust_least_squares(design, measured)

    def test_rank_deficient_design_raises(self, rng):
        design = np.ones((12, 4))  # all rows identical: rank 1
        with pytest.raises(ValueError):
            robust_least_squares(design, np.ones(12))

    def test_pure_function_of_inputs(self, rng):
        _, design, measured = synthetic_system(rng)
        measured = measured.copy()
        measured[7] *= 4.0
        first = robust_least_squares(design, measured)
        second = robust_least_squares(design, measured)
        assert first[0].tobytes() == second[0].tobytes()
        assert np.array_equal(first[1], second[1])


class TestSingleFaultLocalizationProperty:
    """Acceptance: >= 90% of single-row faults localized; robust beats naive."""

    TRIALS = 120

    def test_localization_rate_and_recovery(self):
        rng = np.random.default_rng(2026)
        localized = 0
        robust_errors = []
        naive_errors = []
        for _ in range(self.TRIALS):
            params, design, measured = synthetic_system(rng)
            row = int(rng.integers(0, len(measured)))
            factor = float(rng.uniform(2.5, 8.0))
            faulted = measured.copy()
            faulted[row] *= factor
            solution, flagged, _, _ = robust_least_squares(design, faulted)
            if row in flagged.tolist():
                localized += 1
            naive, *_ = np.linalg.lstsq(design, faulted, rcond=None)
            robust_errors.append(np.max(np.abs(solution - params)))
            naive_errors.append(np.max(np.abs(naive - params)))
        assert localized >= 0.9 * self.TRIALS
        # Recovered estimates beat the unscreened least-squares solve by
        # orders of magnitude under faults.
        assert np.median(robust_errors) < np.median(naive_errors) / 100.0

    def test_beats_square_system_under_loo_fault(self, ring):
        # Fault a leave-one-out row: the square Sec. III.B scheme eats it
        # as a corrupted ddiff; the overdetermined screen excises it.
        truth = ring.ddiffs()
        square_errs = []
        robust_errs = []
        for seed in range(10):
            estimate = measure_ddiffs_leave_one_out(
                noisy_measurer(seed=seed), ring
            )
            # corrupt the measurement of LOO row 3 (stage 2) by 4x
            corrupted = estimate.measurements.copy()
            corrupted[3] *= 4.0
            square_ddiffs = corrupted[0] - corrupted[1:]
            square_errs.append(np.max(np.abs(square_ddiffs - truth)))
            over = measure_ddiffs_overdetermined(noisy_measurer(seed=seed), ring)
            faulted = over.measurements.copy()
            faulted[3] *= 4.0
            _, design = build_design(ring.stage_count)
            solution, flagged, _, _ = robust_least_squares(design, faulted)
            robust_errs.append(np.max(np.abs(solution[1:] - truth)))
            assert 3 in flagged.tolist()
        assert np.median(robust_errs) < np.median(square_errs) / 50.0


class TestMeasureDdiffsOverdetermined:
    def test_noiseless_is_exact_and_clean(self, ring):
        measurer = DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)
        estimate = measure_ddiffs_overdetermined(measurer, ring)
        assert np.allclose(estimate.ddiffs, ring.ddiffs(), rtol=1e-9)
        assert estimate.fault_count == 0
        assert estimate.residual_rms < 1e-12
        assert len(estimate.configs) == 2 * ring.stage_count + 1

    def test_recovers_intercept(self, ring):
        from repro.core.config_vector import ConfigVector

        measurer = DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)
        estimate = measure_ddiffs_overdetermined(measurer, ring)
        bypass = ring.chain_delay(
            ConfigVector.none_selected(ring.stage_count)
        )
        assert np.isclose(estimate.intercept, bypass, rtol=1e-9)

    def test_detects_injected_glitch(self, ring):
        # One glitch via the fault plan; deterministic seeds make this a
        # stable pin, not a flaky roll: seed 3 faults exactly one row.
        plan = FaultPlan(
            seed=3, models=[CounterGlitch(probability=0.06, min_factor=3.0)]
        )
        measurer = plan.wrap_measurer(noisy_measurer(seed=1))
        estimate = measure_ddiffs_overdetermined(measurer, ring)
        assert plan.total_injected >= 1
        assert estimate.fault_count >= 1
        # an unexcised x3 glitch would shift a ddiff by ~2x the chain
        # delay; the screened estimate stays within the noise band
        scale = np.max(np.abs(estimate.measurements))
        error = np.max(np.abs(estimate.ddiffs - ring.ddiffs()))
        assert error < 20 * NOISE_SIGMA * scale

    def test_dropouts_survive(self, ring):
        plan = FaultPlan(seed=2, models=[Dropout(probability=0.08)])
        measurer = plan.wrap_measurer(noisy_measurer(seed=4))
        estimate = measure_ddiffs_overdetermined(measurer, ring)
        assert plan.total_injected >= 1
        assert np.all(np.isfinite(estimate.ddiffs))
        assert estimate.fault_count >= plan.total_injected

    def test_fault_counter_metric(self, ring):
        obs.enable_metrics()
        obs.reset_metrics()
        try:
            plan = FaultPlan(seed=3, models=[CounterGlitch(probability=0.06)])
            measurer = plan.wrap_measurer(noisy_measurer(seed=1))
            estimate = measure_ddiffs_overdetermined(measurer, ring)
            counters = obs.snapshot()["counters"]
            assert counters["measurement.faults_detected"] == estimate.fault_count
        finally:
            obs.disable_metrics()
            obs.reset_metrics()

    def test_deterministic(self, ring):
        runs = []
        for _ in range(2):
            plan = FaultPlan(seed=3, models=[CounterGlitch(probability=0.06)])
            estimate = measure_ddiffs_overdetermined(
                plan.wrap_measurer(noisy_measurer(seed=1)), ring
            )
            runs.append(
                (estimate.ddiffs.tobytes(), estimate.flagged.tobytes())
            )
        assert runs[0] == runs[1]


class TestChainDelaysRobust:
    def test_matches_truth_without_faults(self, ring):
        configs = leave_one_out_vectors(ring.stage_count)
        measurer = DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)
        robust = measurer.chain_delays_robust(ring, configs, k=5)
        truth = ring.chain_delays(configs)
        assert np.allclose(robust, truth, rtol=1e-12)

    def test_single_glitch_cannot_move_the_estimate(self, ring):
        configs = leave_one_out_vectors(ring.stage_count)
        truth = ring.chain_delays(configs)
        plan = FaultPlan(seed=5, models=[CounterGlitch(probability=0.05)])
        measurer = plan.wrap_measurer(noisy_measurer(seed=9))
        robust = measurer.chain_delays_robust(ring, configs, k=5)
        assert plan.total_injected >= 1
        assert np.max(np.abs(robust / truth - 1.0)) < 10 * NOISE_SIGMA
        # the mean path absorbs the same glitches wholesale
        plan.reset()
        mean_measurer = plan.wrap_measurer(noisy_measurer(seed=9, repeats=5))
        averaged = mean_measurer.chain_delays(ring, configs)
        assert np.max(np.abs(averaged / truth - 1.0)) > 50 * NOISE_SIGMA

    def test_all_dropout_config_yields_nan(self, ring):
        configs = leave_one_out_vectors(ring.stage_count)
        plan = FaultPlan(seed=0, models=[Dropout(probability=1.0)])
        measurer = plan.wrap_measurer(noisy_measurer())
        robust = measurer.chain_delays_robust(ring, configs, k=3)
        assert np.all(np.isnan(robust))

    def test_rejection_metrics(self, ring):
        configs = leave_one_out_vectors(ring.stage_count)
        obs.enable_metrics()
        obs.reset_metrics()
        try:
            plan = FaultPlan(seed=5, models=[CounterGlitch(probability=0.05)])
            measurer = plan.wrap_measurer(noisy_measurer(seed=9))
            measurer.chain_delays_robust(ring, configs, k=5)
            counters = obs.snapshot()["counters"]
            assert counters.get("measurement.robust.outliers_rejected", 0) >= 1
        finally:
            obs.disable_metrics()
            obs.reset_metrics()

    def test_validation(self, ring):
        configs = leave_one_out_vectors(ring.stage_count)
        measurer = noisy_measurer()
        with pytest.raises(ValueError):
            measurer.chain_delays_robust(ring, configs, k=0)
        with pytest.raises(ValueError):
            measurer.chain_delays_robust(ring, configs, mad_threshold=0.0)
