"""Tests of the attack analyses (and their logistic-regression substrate)."""

import numpy as np
import pytest

from repro.attacks.config_leakage import (
    config_features,
    evaluate_config_leakage,
)
from repro.attacks.logistic import LogisticRegression
from repro.attacks.model_attack import evaluate_model_attack, ms_response
from repro.core.selection import select_case1, select_case2
from repro.core.selection_ext import select_unconstrained


def random_pairs(count, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.normal(1.0, 0.05, n), rng.normal(1.0, 0.05, n))
        for _ in range(count)
    ]


class TestLogisticRegression:
    def test_learns_linearly_separable(self, rng):
        x = rng.normal(0, 1, (400, 2))
        y = x[:, 0] + 2 * x[:, 1] > 0
        model = LogisticRegression(epochs=500).fit(x, y)
        assert model.accuracy(x, y) > 0.95

    def test_chance_on_pure_noise(self, rng):
        x = rng.normal(0, 1, (400, 3))
        y = rng.integers(0, 2, 400).astype(bool)
        model = LogisticRegression().fit(x[:200], y[:200])
        assert 0.3 < model.accuracy(x[200:], y[200:]) < 0.7

    def test_predict_proba_range(self, rng):
        x = rng.normal(0, 1, (50, 2))
        y = x[:, 0] > 0
        model = LogisticRegression().fit(x, y)
        proba = model.predict_proba(x)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(epochs=0)
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_shape_validation(self, rng):
        model = LogisticRegression()
        with pytest.raises(ValueError):
            model.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 2)), np.zeros(4))


class TestConfigFeatures:
    def test_feature_layout(self):
        selection = select_case1(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
        features = config_features(selection)
        # count diff, total count, 2 top bits, 2 bottom bits
        assert features.shape == (6,)
        assert features[0] == 0.0  # equal counts in case1

    def test_unconstrained_count_difference_nonzero(self, rng):
        alpha = rng.normal(1.0, 0.1, 5)
        beta = rng.normal(1.0, 0.1, 5)
        selection = select_unconstrained(alpha, beta)
        assert config_features(selection)[0] != 0.0


class TestConfigLeakage:
    def test_equal_count_schemes_leak_nothing(self):
        pairs = random_pairs(400, 7)
        for selector, name in ((select_case1, "case1"), (select_case2, "case2")):
            result = evaluate_config_leakage(selector, name, pairs)
            assert result.advantage < 0.15, result

    def test_unconstrained_leaks_everything(self):
        pairs = random_pairs(400, 7)
        result = evaluate_config_leakage(
            select_unconstrained, "unconstrained", pairs
        )
        assert result.accuracy > 0.95

    def test_split_sizes(self):
        pairs = random_pairs(100, 5)
        result = evaluate_config_leakage(
            select_case1, "case1", pairs, train_fraction=0.7
        )
        assert result.train_pairs == 70
        assert result.test_pairs == 30

    def test_validation(self):
        pairs = random_pairs(5, 5)
        with pytest.raises(ValueError, match="10 pairs"):
            evaluate_config_leakage(select_case1, "x", pairs)
        with pytest.raises(ValueError, match="train_fraction"):
            evaluate_config_leakage(
                select_case1, "x", random_pairs(20, 5), train_fraction=1.0
            )


class TestModelAttack:
    def test_ms_response_definition(self, rng):
        top = rng.normal(1.0, 0.05, (4, 2))
        bottom = rng.normal(1.0, 0.05, (4, 2))
        word = np.array([0, 1, 1, 0])
        idx = np.arange(4)
        expected = (
            np.sum(top[idx, word]) - np.sum(bottom[idx, word])
        ) > 0
        assert ms_response(top, bottom, word) == expected

    def test_ms_response_validation(self, rng):
        top = rng.normal(1.0, 0.05, (4, 2))
        with pytest.raises(ValueError):
            ms_response(top, top[:3], np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            ms_response(top, top, np.zeros(3, dtype=int))

    def test_attack_learns_the_puf(self):
        result = evaluate_model_attack(seed=1)
        assert result.accuracy > 0.9
        assert result.chance < 0.7
        assert result.advantage > 0.2

    def test_attack_parameter_validation(self):
        with pytest.raises(ValueError):
            evaluate_model_attack(stage_count=1)
        with pytest.raises(ValueError):
            evaluate_model_attack(train_crps=2)
