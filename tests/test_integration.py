"""End-to-end integration tests crossing all subsystems.

Each test walks the full production flow the paper envisions: fabricate (or
load) silicon, measure, configure, deploy, and consume the secret in an
application — asserting the paper's qualitative claims along the way.
"""

import numpy as np

from repro import (
    Authenticator,
    BCHCode,
    ChipROPUF,
    FabricationProcess,
    FuzzyExtractor,
    KeyGenerator,
    OperatingPoint,
    allocate_rings,
)
from repro.core.puf import BoardROPUF
from repro.crypto.keygen import KeyGenerator as KG
from repro.metrics import bit_flip_report, uniqueness_report
from repro.nist import run_battery
from repro.variation import full_grid

del KG


class TestChipLifecycle:
    def test_fleet_uniqueness_and_stability(self):
        fab = FabricationProcess()
        rng = np.random.default_rng(42)
        chips = fab.fabricate_lot(12, 96, rng)
        responses = []
        flips = 0
        harsh = OperatingPoint(0.98, 65.0)
        for chip in chips:
            puf = ChipROPUF.deploy(chip, stage_count=4, method="case2")
            enrollment = puf.enroll()
            responses.append(enrollment.bits)
            response = puf.response(harsh, enrollment)
            flips += int(np.sum(response != enrollment.bits))
        report = uniqueness_report(np.stack(responses))
        assert 30.0 < report.uniqueness_percent < 70.0
        assert flips <= len(chips)  # near-perfect stability

    def test_margins_grow_with_ring_length(self):
        fab = FabricationProcess()
        chip = fab.fabricate(512, np.random.default_rng(7))
        means = []
        for n in (3, 5, 7):
            puf = ChipROPUF.deploy(chip, stage_count=n, method="case1")
            means.append(np.mean(np.abs(puf.enroll().margins)))
        assert means[0] < means[2]


class TestDatasetLifecycle:
    def test_full_board_pipeline(self, small_dataset):
        board = small_dataset.swept_boards[0]
        allocation = allocate_rings(board.ro_count, 5)
        puf = BoardROPUF(
            delay_provider=board.delay_provider(),
            allocation=allocation,
            method="case1",
            require_odd=True,
        )
        enrollment = puf.enroll(small_dataset.nominal)
        observations = np.stack(
            [
                puf.response(op, enrollment)
                for op in full_grid()
                if op != small_dataset.nominal
            ]
        )
        report = bit_flip_report(enrollment.bits, observations)
        assert report.flip_percent <= 15.0

    def test_nist_battery_runs_on_real_pipeline_bits(self, small_dataset):
        from repro.experiments.nist_tables import nist_streams

        streams = nist_streams(small_dataset)
        outcomes, skipped = run_battery(streams.ravel())
        assert outcomes  # battery produced results on the concatenated bits
        assert "Universal" in skipped


class TestKeyAndAuthentication:
    def test_key_through_harsh_corner(self, small_dataset):
        board = small_dataset.swept_boards[0]
        allocation = allocate_rings(board.ro_count, 4)  # 16 bits
        puf = BoardROPUF(
            delay_provider=board.delay_provider(),
            allocation=allocation,
            method="case2",
        )
        generator = KeyGenerator(
            puf=puf,
            extractor=FuzzyExtractor(code=BCHCode(m=4, t=2)),  # needs 15 bits
            rng=np.random.default_rng(0),
        )
        material = generator.enroll(small_dataset.nominal)
        for corner in (OperatingPoint(0.98, 25.0), OperatingPoint(1.44, 65.0)):
            assert generator.regenerate(material, corner) == material.key

    def test_authentication_separates_chips(self, small_dataset):
        verifier = Authenticator(threshold_fraction=0.2)
        enrollments = {}
        for board in small_dataset.nominal_boards[:4]:
            allocation = allocate_rings(board.ro_count, 3)
            puf = BoardROPUF(
                delay_provider=board.delay_provider(),
                allocation=allocation,
                method="case1",
            )
            enrollment = puf.enroll(small_dataset.nominal)
            verifier.enroll(board.name, enrollment.bits)
            enrollments[board.name] = enrollment.bits
        names = list(enrollments)
        for name in names:
            assert verifier.authenticate(name, enrollments[name]).accepted
            for other in names:
                if other != name:
                    result = verifier.authenticate(other, enrollments[name])
                    assert not result.accepted
