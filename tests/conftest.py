"""Shared fixtures: small synthetic datasets and chips for fast tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.datasets.vtlike import VTLikeConfig, generate_vt_like
from repro.silicon.fabrication import FabricationProcess

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def small_dataset():
    """A small VT-shaped dataset: 8 nominal + 2 swept boards, 128 ROs."""
    return generate_vt_like(
        VTLikeConfig(
            nominal_boards=8,
            swept_boards=2,
            ro_count=128,
            grid_columns=8,
            grid_rows=16,
            seed=1234,
        )
    )


@pytest.fixture(scope="session")
def chip():
    """One fabricated chip of 64 delay units."""
    return FabricationProcess().fabricate(
        64, np.random.default_rng(99), name="testchip"
    )


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0)
