"""Unit tests of the PUF quality metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.entropy import (
    min_entropy_per_bit,
    response_entropy_report,
    shannon_entropy_per_bit,
)
from repro.metrics.hamming import (
    hamming_distance,
    hamming_distance_histogram,
    pairwise_hamming_distances,
)
from repro.metrics.reliability import bit_flip_report, flip_positions
from repro.metrics.uniformity import bit_aliasing, uniformity, uniformity_report
from repro.metrics.uniqueness import uniqueness_report

bit_matrices = st.integers(2, 8).flatmap(
    lambda rows: st.integers(1, 16).flatmap(
        lambda cols: st.lists(
            st.lists(st.booleans(), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
)


class TestHamming:
    def test_basic_distance(self):
        assert hamming_distance([1, 0, 1], [0, 0, 1]) == 1
        assert hamming_distance([1, 1], [1, 1]) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([1, 0], [1, 0, 1])

    def test_pairwise_matches_naive(self, rng):
        bits = rng.integers(0, 2, (10, 32)).astype(bool)
        fast = pairwise_hamming_distances(bits)
        naive = []
        for i in range(10):
            for j in range(i + 1, 10):
                naive.append(int(np.sum(bits[i] != bits[j])))
        assert fast.tolist() == naive

    def test_pairwise_single_row(self):
        assert len(pairwise_hamming_distances(np.ones((1, 4), dtype=bool))) == 0

    def test_histogram_counts_sum_to_pairs(self, rng):
        bits = rng.integers(0, 2, (12, 16)).astype(bool)
        _, counts = hamming_distance_histogram(bits)
        assert counts.sum() == 12 * 11 // 2

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pairwise_hamming_distances(np.array([[0, 2], [1, 0]]))

    @given(bit_matrices)
    def test_pairwise_bounds(self, matrix):
        bits = np.array(matrix, dtype=bool)
        distances = pairwise_hamming_distances(bits)
        assert np.all(distances >= 0)
        assert np.all(distances <= bits.shape[1])


class TestUniqueness:
    def test_identical_rows_collide(self):
        bits = np.zeros((3, 8), dtype=bool)
        report = uniqueness_report(bits)
        assert report.has_collision
        assert report.mean_distance == 0.0

    def test_complementary_rows(self):
        bits = np.array([[0] * 8, [1] * 8], dtype=bool)
        report = uniqueness_report(bits)
        assert report.mean_distance == 8.0
        assert report.uniqueness_percent == pytest.approx(100.0)

    def test_random_rows_near_half(self, rng):
        bits = rng.integers(0, 2, (40, 256)).astype(bool)
        report = uniqueness_report(bits)
        assert abs(report.uniqueness_percent - 50.0) < 3.0
        assert not report.has_collision
        assert report.min_distance > 0

    def test_needs_two_rows(self):
        with pytest.raises(ValueError):
            uniqueness_report(np.ones((1, 8), dtype=bool))

    def test_pair_count(self, rng):
        bits = rng.integers(0, 2, (5, 8)).astype(bool)
        assert uniqueness_report(bits).pair_count == 10


class TestReliability:
    def test_no_flips(self):
        reference = np.array([1, 0, 1, 0], dtype=bool)
        observations = np.tile(reference, (3, 1))
        report = bit_flip_report(reference, observations)
        assert report.is_perfectly_stable
        assert report.flip_percent == 0.0

    def test_flip_positions_union_semantics(self):
        reference = np.array([0, 0, 0, 0], dtype=bool)
        observations = np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [1, 0, 0, 0]], dtype=bool
        )
        positions = flip_positions(reference, observations)
        assert positions.tolist() == [0, 2]

    def test_paper_metric_counts_positions_once(self):
        # A position flipping in several observations counts once.
        reference = np.zeros(10, dtype=bool)
        observations = np.zeros((5, 10), dtype=bool)
        observations[:, 3] = True
        report = bit_flip_report(reference, observations)
        assert report.flip_count == 1
        assert report.flip_percent == pytest.approx(10.0)

    def test_mean_intra_hd(self):
        reference = np.zeros(4, dtype=bool)
        observations = np.array([[1, 0, 0, 0], [1, 1, 0, 0]], dtype=bool)
        report = bit_flip_report(reference, observations)
        assert report.mean_intra_hd_percent == pytest.approx(100 * 1.5 / 4)

    def test_single_observation_vector(self):
        reference = np.array([1, 1, 0], dtype=bool)
        report = bit_flip_report(reference, np.array([1, 0, 0], dtype=bool))
        assert report.flip_count == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            bit_flip_report(np.ones(3, dtype=bool), np.ones((2, 4), dtype=bool))
        with pytest.raises(ValueError):
            bit_flip_report(np.array([], dtype=bool), np.ones((1, 0), dtype=bool))

    def test_zero_observations_mean_zero_flips(self):
        """No observations carry no evidence of instability: 0%, not nan."""
        reference = np.array([1, 0, 1, 1], dtype=bool)
        report = bit_flip_report(reference, np.empty((0, 4), dtype=bool))
        assert report.observation_count == 0
        assert report.flip_count == 0
        assert report.flip_percent == 0.0
        assert report.mean_intra_hd_percent == 0.0
        assert report.is_perfectly_stable

    def test_all_flipped_input(self):
        reference = np.array([1, 0, 1, 0], dtype=bool)
        observations = np.stack([~reference, ~reference])
        report = bit_flip_report(reference, observations)
        assert report.flip_count == 4
        assert report.flip_percent == pytest.approx(100.0)
        assert report.mean_intra_hd_percent == pytest.approx(100.0)
        assert not report.is_perfectly_stable


class TestUniformity:
    def test_vector_input(self):
        assert uniformity(np.array([1, 1, 0, 0], dtype=bool))[0] == 0.5

    def test_matrix_input(self):
        bits = np.array([[1, 1, 1, 1], [0, 0, 0, 0]], dtype=bool)
        assert uniformity(bits).tolist() == [1.0, 0.0]

    def test_bit_aliasing(self):
        bits = np.array([[1, 0], [1, 0], [1, 1]], dtype=bool)
        aliasing = bit_aliasing(bits)
        assert aliasing[0] == 1.0
        assert aliasing[1] == pytest.approx(1 / 3)

    def test_report_on_random(self, rng):
        bits = rng.integers(0, 2, (50, 64)).astype(bool)
        report = uniformity_report(bits)
        assert abs(report.mean_uniformity_percent - 50.0) < 5.0
        assert abs(report.mean_aliasing_percent - 50.0) < 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniformity(np.zeros((2, 0), dtype=bool))
        with pytest.raises(ValueError):
            bit_aliasing(np.zeros((0, 4), dtype=bool))


class TestEntropy:
    def test_constant_positions_have_zero_entropy(self):
        bits = np.zeros((10, 4), dtype=bool)
        assert np.all(shannon_entropy_per_bit(bits) == 0.0)
        assert np.all(min_entropy_per_bit(bits) == 0.0)

    def test_balanced_positions_have_full_entropy(self):
        bits = np.array([[0, 1], [1, 0], [0, 1], [1, 0]], dtype=bool)
        assert np.allclose(shannon_entropy_per_bit(bits), 1.0)
        assert np.allclose(min_entropy_per_bit(bits), 1.0)

    def test_min_entropy_below_shannon(self, rng):
        bits = rng.integers(0, 2, (64, 32)).astype(bool)
        shannon = shannon_entropy_per_bit(bits)
        minimum = min_entropy_per_bit(bits)
        assert np.all(minimum <= shannon + 1e-12)

    def test_report_totals(self, rng):
        bits = rng.integers(0, 2, (64, 32)).astype(bool)
        report = response_entropy_report(bits)
        assert report["total_shannon_entropy"] == pytest.approx(
            np.sum(shannon_entropy_per_bit(bits))
        )
        assert 0.0 <= report["mean_min_entropy"] <= 1.0
