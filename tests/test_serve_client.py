"""The resilient :class:`~repro.serve.client.AuthClient`.

Driven against a scripted frame server so every failure is exact and
deterministic: retriable error frames are retried for any verb,
ambiguous transport failures are retried only for idempotent verbs
(with automatic reconnect), terminal errors are never retried, and
repeated failures open the client-side circuit breaker, which fails
calls fast until its cooldown and one successful half-open probe.
All of it opt-in: with the default ``retries=0`` the client keeps the
historical fail-fast behaviour (pinned by ``tests/test_serve_protocol``).
"""

from __future__ import annotations

import socketserver
import threading
import time
from collections import deque

import pytest

from repro.serve import AuthClient, CircuitOpen, ServeClientError
from repro.serve.client import IDEMPOTENT_VERBS
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    error_frame,
    read_frame,
    write_frame,
)

#: Sentinel script entry: close the connection without replying.
HANGUP = "hangup"

OVERLOADED = error_frame("at capacity", "Overloaded")
RATE_LIMITED = error_frame("slow down", "RateLimited")
BAD_REQUEST = error_frame("no such field", "BadRequest")
OK = {"ok": True}


class _ScriptedHandler(socketserver.StreamRequestHandler):
    def handle(self):
        while True:
            try:
                request = read_frame(self.rfile, MAX_FRAME_BYTES)
            except Exception:
                return
            if request is None:
                return
            with self.server.lock:
                self.server.requests.append(request)
                action = (
                    self.server.script.popleft() if self.server.script else OK
                )
            if action == HANGUP:
                return
            try:
                write_frame(self.wfile, action, MAX_FRAME_BYTES)
            except OSError:
                return


class ScriptedServer(socketserver.ThreadingTCPServer):
    """Answers each request with the next scripted response (then OK)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, script):
        super().__init__(("127.0.0.1", 0), _ScriptedHandler)
        self.script = deque(script)
        self.requests: list[dict] = []
        self.lock = threading.Lock()
        self._thread = threading.Thread(
            target=self.serve_forever,
            daemon=True,
            kwargs={"poll_interval": 0.02},
        )
        self._thread.start()

    @property
    def address(self):
        return self.server_address[:2]

    def stop(self):
        self.shutdown()
        self._thread.join(timeout=2.0)
        self.server_close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()


def make_client(server, **overrides) -> AuthClient:
    options = {"retries": 2, "backoff_s": 0.001, "timeout": 5.0}
    options.update(overrides)
    return AuthClient(*server.address, **options)


class TestRetriableFrameRetries:
    def test_retries_until_success(self):
        with ScriptedServer([OVERLOADED, OVERLOADED, OK]) as server:
            with make_client(server) as client:
                assert client.ping()["ok"] is True
                assert len(server.requests) == 3
                stats = client.retry_stats()
                assert stats["retried"] == 2
                assert stats["breaker_state"] == "closed"

    def test_any_verb_retries_on_retriable_frame(self):
        # auth is not transport-idempotent, but a typed retriable frame
        # promises nothing happened — so even auth retries.
        assert "auth" not in IDEMPOTENT_VERBS
        with ScriptedServer([RATE_LIMITED, OK]) as server:
            with make_client(server) as client:
                response = client.call(
                    "auth", device="d", challenge_id="c", answer="01"
                )
                assert response["ok"] is True
                assert len(server.requests) == 2

    def test_exhausted_retries_return_the_rejection(self):
        with ScriptedServer([OVERLOADED] * 3) as server:
            with make_client(server, retries=2) as client:
                response = client.ping()
                assert response["ok"] is False
                assert response["error_type"] == "Overloaded"
                assert len(server.requests) == 3

    def test_no_retry_by_default(self):
        with ScriptedServer([OVERLOADED, OK]) as server:
            with AuthClient(*server.address) as client:
                response = client.ping()
                assert response["ok"] is False
                assert len(server.requests) == 1

    def test_terminal_error_never_retried(self):
        with ScriptedServer([BAD_REQUEST, OK]) as server:
            with make_client(server, retries=5) as client:
                response = client.ping()
                assert response["error_type"] == "BadRequest"
                assert len(server.requests) == 1


class TestTransportRetries:
    def test_idempotent_verb_reconnects_and_retries(self):
        with ScriptedServer([HANGUP, OK]) as server:
            with make_client(server) as client:
                assert client.ping()["ok"] is True
                assert len(server.requests) == 2
                assert client.retry_stats()["reconnects"] >= 1

    def test_non_idempotent_verb_fails_fast_on_transport(self):
        # An auth whose connection died mid-exchange is ambiguous: the
        # challenge may already be consumed server-side, so a blind
        # replay is unsafe and the failure surfaces immediately.
        with ScriptedServer([HANGUP, OK]) as server:
            with make_client(server, retries=5) as client:
                with pytest.raises(ServeClientError):
                    client.call(
                        "auth", device="d", challenge_id="c", answer="01"
                    )
                assert len(server.requests) == 1

    def test_connection_survives_mixed_outcomes(self):
        script = [OK, HANGUP, OK, OVERLOADED, OK]
        with ScriptedServer(script) as server:
            with make_client(server, retries=3) as client:
                assert client.ping()["ok"] is True
                assert client.ping()["ok"] is True  # reconnect + retry
                assert client.ping()["ok"] is True  # shed + retry
                assert len(server.requests) == 5


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        with ScriptedServer([OVERLOADED] * 10) as server:
            with make_client(
                server,
                retries=1,
                breaker_threshold=2,
                breaker_reset_s=30.0,
            ) as client:
                client.ping()  # two attempts, both shed -> breaker opens
                assert client.retry_stats()["breaker_state"] == "open"
                requests_before = len(server.requests)
                with pytest.raises(CircuitOpen):
                    client.ping()
                # Failing fast means no frame crossed the wire.
                assert len(server.requests) == requests_before

    def test_half_open_probe_closes_on_success(self):
        with ScriptedServer([OVERLOADED, OVERLOADED, OK]) as server:
            with make_client(
                server,
                retries=1,
                breaker_threshold=2,
                breaker_reset_s=0.1,
            ) as client:
                client.ping()  # both attempts shed -> breaker opens
                assert client.retry_stats()["breaker_state"] == "open"
                time.sleep(0.15)
                assert client.retry_stats()["breaker_state"] == "half-open"
                assert client.ping()["ok"] is True  # the probe
                stats = client.retry_stats()
                assert stats["breaker_state"] == "closed"
                assert stats["consecutive_failures"] == 0

    def test_half_open_probe_reopens_on_failure(self):
        with ScriptedServer([OVERLOADED] * 10) as server:
            with make_client(
                server,
                retries=1,
                breaker_threshold=2,
                breaker_reset_s=0.1,
            ) as client:
                client.ping()
                time.sleep(0.15)
                # The half-open probe is shed too: the breaker reopens,
                # and the call's own in-flight retry now fails fast.
                with pytest.raises(CircuitOpen):
                    client.ping()
                assert client.retry_stats()["breaker_state"] == "open"

    def test_terminal_errors_do_not_trip_the_breaker(self):
        # A coherent error response proves the server is healthy; only
        # transport failures and overload rejections count.
        with ScriptedServer([BAD_REQUEST] * 10) as server:
            with make_client(
                server, retries=1, breaker_threshold=2
            ) as client:
                for _ in range(5):
                    assert client.ping()["error_type"] == "BadRequest"
                assert client.retry_stats()["breaker_state"] == "closed"

    def test_breaker_disabled_without_retries(self):
        # retries=0 keeps the historical contract: failures surface, the
        # client never withholds a call on its own.
        with ScriptedServer([OVERLOADED] * 10) as server:
            with AuthClient(
                *server.address, breaker_threshold=2
            ) as client:
                for _ in range(5):
                    assert client.ping()["ok"] is False
                assert client.retry_stats()["breaker_state"] == "closed"


class TestConstructorValidation:
    @pytest.mark.parametrize(
        "options",
        [
            {"retries": -1},
            {"backoff_s": -0.1},
            {"breaker_threshold": 0},
            {"breaker_reset_s": 0.0},
        ],
    )
    def test_bad_options_rejected(self, options):
        with ScriptedServer([]) as server:
            with pytest.raises(ValueError):
                AuthClient(*server.address, **options)

    def test_backoff_is_deterministic_and_exponential(self):
        with ScriptedServer([]) as server:
            with AuthClient(
                *server.address, backoff_s=0.05, jitter_fraction=0.1
            ) as client:
                first = client._backoff_delay("ping", 1)
                second = client._backoff_delay("ping", 2)
                assert first == client._backoff_delay("ping", 1)
                assert 0.05 <= first <= 0.055
                assert 0.10 <= second <= 0.11
                assert second > first
