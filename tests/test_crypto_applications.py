"""Tests of the fuzzy extractor, key generator, and authenticator."""

import numpy as np
import pytest

from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF
from repro.crypto.authentication import Authenticator
from repro.crypto.ecc import BCHCode, RepetitionCode
from repro.crypto.fuzzy_extractor import FuzzyExtractor, HelperData
from repro.crypto.keygen import KeyGenerator
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint


class TestFuzzyExtractor:
    def make(self):
        return FuzzyExtractor(code=BCHCode(m=5, t=3), key_bytes=16)

    def test_generate_reproduce_round_trip(self, rng):
        extractor = self.make()
        response = rng.integers(0, 2, extractor.response_bits).astype(bool)
        key, helper = extractor.generate(response, rng)
        assert extractor.reproduce(response, helper) == key
        assert len(key) == 16

    def test_tolerates_up_to_t_flips(self, rng):
        extractor = self.make()
        response = rng.integers(0, 2, extractor.response_bits).astype(bool)
        key, helper = extractor.generate(response, rng)
        noisy = response.copy()
        noisy[rng.choice(len(noisy), size=3, replace=False)] ^= True
        assert extractor.reproduce(noisy, helper) == key

    def test_fails_beyond_capability(self, rng):
        extractor = self.make()
        response = rng.integers(0, 2, extractor.response_bits).astype(bool)
        key, helper = extractor.generate(response, rng)
        hostile = ~response  # all bits flipped
        try:
            recovered = extractor.reproduce(hostile, helper)
            assert recovered != key
        except ValueError:
            pass  # decoder detected overload: also acceptable

    def test_different_enrollments_different_keys(self, rng):
        extractor = self.make()
        response = rng.integers(0, 2, extractor.response_bits).astype(bool)
        key1, _ = extractor.generate(response, rng)
        key2, _ = extractor.generate(response, rng)
        assert key1 != key2  # fresh code randomness and salt

    def test_helper_length_validation(self, rng):
        extractor = self.make()
        response = rng.integers(0, 2, extractor.response_bits).astype(bool)
        _, helper = extractor.generate(response, rng)
        bad = HelperData(offset=helper.offset[:-1], salt=helper.salt)
        with pytest.raises(ValueError):
            extractor.reproduce(response, bad)

    def test_response_length_validation(self, rng):
        extractor = self.make()
        with pytest.raises(ValueError):
            extractor.generate(np.zeros(7, dtype=bool), rng)

    def test_key_bytes_extension(self, rng):
        extractor = FuzzyExtractor(code=RepetitionCode(5), key_bytes=64)
        response = rng.integers(0, 2, 5).astype(bool)
        key, helper = extractor.generate(response, rng)
        assert len(key) == 64
        assert extractor.reproduce(response, helper) == key

    def test_key_bytes_validation(self):
        with pytest.raises(ValueError):
            FuzzyExtractor(key_bytes=0)


def make_puf(seed, n_units=400, stage_count=3, method="case1"):
    data_rng = np.random.default_rng(seed)
    base = data_rng.normal(1.0, 0.02, n_units)
    sensitivity = data_rng.normal(0.05, 0.005, n_units)

    def provider(op):
        return base * (1.0 + sensitivity * (1.20 - op.voltage))

    ring_count = n_units // stage_count // 2 * 2
    allocation = RingAllocation(stage_count=stage_count, ring_count=ring_count)
    return BoardROPUF(
        delay_provider=provider, allocation=allocation, method=method
    )


class TestKeyGenerator:
    def test_enroll_and_regenerate_same_corner(self, rng):
        puf = make_puf(0)
        generator = KeyGenerator(puf=puf, rng=rng)
        material = generator.enroll()
        assert generator.regenerate(material, NOMINAL_OPERATING_POINT) == material.key

    def test_regenerate_across_voltage(self, rng):
        puf = make_puf(1)
        generator = KeyGenerator(puf=puf, rng=rng)
        material = generator.enroll()
        key = generator.regenerate(material, OperatingPoint(1.00, 25.0))
        assert key == material.key

    def test_uses_highest_margin_bits(self, rng):
        puf = make_puf(2)
        generator = KeyGenerator(puf=puf, rng=rng)
        material = generator.enroll()
        margins = np.abs(material.enrollment.margins)
        used = set(material.used_bits.tolist())
        unused = [i for i in range(len(margins)) if i not in used]
        if unused:
            assert margins[material.used_bits].min() >= margins[unused].max() - 1e-12

    def test_rejects_undersized_puf(self, rng):
        puf = make_puf(3, n_units=12, stage_count=3)  # 2 bits only
        with pytest.raises(ValueError, match="response bits"):
            KeyGenerator(puf=puf, extractor=FuzzyExtractor(code=BCHCode(m=5, t=3)))


class TestAuthenticator:
    def test_enroll_and_authenticate_genuine(self, rng):
        verifier = Authenticator()
        reference = rng.integers(0, 2, 64).astype(bool)
        verifier.enroll("device-a", reference)
        result = verifier.authenticate("device-a", reference)
        assert result.accepted and result.distance == 0

    def test_tolerates_noise_within_threshold(self, rng):
        verifier = Authenticator(threshold_fraction=0.2)
        reference = rng.integers(0, 2, 100).astype(bool)
        verifier.enroll("device-a", reference)
        noisy = reference.copy()
        noisy[:10] ^= True
        assert verifier.authenticate("device-a", noisy).accepted

    def test_rejects_impostor(self, rng):
        verifier = Authenticator()
        verifier.enroll("device-a", rng.integers(0, 2, 128).astype(bool))
        impostor = rng.integers(0, 2, 128).astype(bool)
        assert not verifier.authenticate("device-a", impostor).accepted

    def test_duplicate_enrollment_rejected(self, rng):
        verifier = Authenticator()
        verifier.enroll("device-a", rng.integers(0, 2, 16).astype(bool))
        with pytest.raises(ValueError, match="already"):
            verifier.enroll("device-a", rng.integers(0, 2, 16).astype(bool))

    def test_unknown_device_rejected(self, rng):
        verifier = Authenticator()
        with pytest.raises(KeyError):
            verifier.authenticate("ghost", rng.integers(0, 2, 16).astype(bool))

    def test_threshold_fraction_validated(self):
        with pytest.raises(ValueError):
            Authenticator(threshold_fraction=0.0)
        with pytest.raises(ValueError):
            Authenticator(threshold_fraction=0.6)

    def test_reference_validated(self):
        verifier = Authenticator()
        with pytest.raises(ValueError):
            verifier.enroll("x", np.zeros((2, 2), dtype=bool))

    def test_enrolled_devices_sorted(self, rng):
        verifier = Authenticator()
        for name in ("zeta", "alpha"):
            verifier.enroll(name, rng.integers(0, 2, 8).astype(bool))
        assert verifier.enrolled_devices == ["alpha", "zeta"]
