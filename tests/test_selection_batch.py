"""Batch selectors: byte-identity with the scalar selectors and exhaustive search."""

import numpy as np
import pytest
from hypothesis import example, given
from hypothesis import strategies as st

from repro.core.selection import (
    select_case1,
    select_case2,
    select_exhaustive,
    select_traditional,
)
from repro.core.selection_batch import (
    BATCH_SELECTION_METHODS,
    masked_row_sums,
    select_case1_batch,
    select_case2_batch,
    select_traditional_batch,
)

SCALAR_BY_METHOD = {
    "case1": select_case1,
    "case2": select_case2,
    "traditional": select_traditional,
}


# Integer-valued float delays keep every sum exact in any evaluation order,
# so batch / scalar / exhaustive must agree deterministically (including
# ties, which integers produce often).
delta_rows = st.lists(
    st.lists(
        st.integers(min_value=-50, max_value=50).map(float),
        min_size=1,
        max_size=10,
    ),
    min_size=1,
    max_size=8,
)


def _pair_matrices(rows: list[list[float]]) -> tuple[np.ndarray, np.ndarray]:
    width = len(rows[0])
    usable = [r for r in rows if len(r) == width]
    alpha = np.array(usable)
    beta = -alpha[::-1] if len(usable) > 1 else np.zeros_like(alpha)
    return alpha, beta


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("method", sorted(BATCH_SELECTION_METHODS))
    @pytest.mark.parametrize("require_odd", [False, True])
    @given(rows=delta_rows, data=st.data())
    def test_batch_matches_scalar(self, method, require_odd, rows, data):
        width = len(rows[0])
        alpha = np.array([r for r in rows if len(r) == width])
        beta = np.array(
            [
                data.draw(
                    st.lists(
                        st.integers(min_value=-50, max_value=50).map(float),
                        min_size=width,
                        max_size=width,
                    )
                )
                for _ in range(len(alpha))
            ]
        )
        batch = BATCH_SELECTION_METHODS[method](alpha, beta, require_odd=require_odd)
        selections = batch.to_selections()
        scalar = SCALAR_BY_METHOD[method]
        for i in range(len(alpha)):
            expected = scalar(alpha[i], beta[i], require_odd=require_odd)
            assert selections[i] == expected
            assert batch.margins[i] == expected.margin

    @pytest.mark.parametrize("method", ["case1", "case2"])
    @pytest.mark.parametrize("require_odd", [False, True])
    @example(rows=[[0.0, 0.0, 0.0], [-2.0, -2.0, 3.0]])
    @given(rows=delta_rows)
    def test_batch_matches_exhaustive_margin(self, method, require_odd, rows):
        alpha, beta = _pair_matrices(rows)
        batch = BATCH_SELECTION_METHODS[method](alpha, beta, require_odd=require_odd)
        greedy_optimal = not (method == "case2" and require_odd)
        for i in range(len(alpha)):
            reference = select_exhaustive(
                alpha[i],
                beta[i],
                same_config=method == "case1",
                require_odd=require_odd,
            )
            if greedy_optimal:
                assert abs(batch.margins[i]) == abs(reference.margin)
            else:
                # Case-2 picks its direction from the pre-repair prefix
                # sums, so parity repair can leave it short of exhaustive
                # (e.g. alpha=[0,0,0], beta=[2,2,-3]); exhaustive is still
                # an upper bound, and batch == scalar is pinned above.
                assert abs(batch.margins[i]) <= abs(reference.margin)


class TestEdgeCases:
    def test_all_negative_delta_case1(self):
        # Every unit hurts the positive direction: the positive branch must
        # fall back to the single least-bad unit, and the negative branch
        # should win overall.
        alpha = np.array([[1.0, 2.0, 3.0]])
        beta = np.array([[5.0, 7.0, 9.0]])
        batch = select_case1_batch(alpha, beta)
        scalar = select_case1(alpha[0], beta[0])
        assert batch.to_selections()[0] == scalar
        assert batch.margins[0] < 0

    def test_parity_add_and_drop_branches(self):
        # Row 0: cheaper to add a unit; row 1: cheaper to drop one.  Both
        # must mirror the scalar repair (and each other's counts stay odd).
        alpha = np.array([[10.0, 8.0, -0.5, -9.0], [10.0, 8.0, -6.0, -9.0]])
        beta = np.zeros_like(alpha)
        batch = select_case1_batch(alpha, beta, require_odd=True)
        for i in range(2):
            scalar = select_case1(alpha[i], beta[i], require_odd=True)
            assert batch.to_selections()[i] == scalar
            assert batch.top_masks[i].sum() % 2 == 1

    def test_tied_delays(self):
        # Exact ties exercise every first-index tie-break at once.
        alpha = np.array([[3.0, 3.0, 3.0, 3.0], [1.0, 1.0, 2.0, 2.0]])
        beta = np.array([[3.0, 3.0, 3.0, 3.0], [2.0, 2.0, 1.0, 1.0]])
        for method, scalar in SCALAR_BY_METHOD.items():
            for require_odd in (False, True):
                batch = BATCH_SELECTION_METHODS[method](
                    alpha, beta, require_odd=require_odd
                )
                for i in range(2):
                    assert batch.to_selections()[i] == scalar(
                        alpha[i], beta[i], require_odd=require_odd
                    )

    def test_shared_config_object_for_case1(self):
        batch = select_case1_batch(np.ones((3, 5)), np.zeros((3, 5)))
        selections = batch.to_selections()
        for selection in selections:
            assert selection.top_config is selection.bottom_config

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            select_case1_batch(np.ones(5), np.ones(5))
        with pytest.raises(ValueError, match="differ in shape"):
            select_case2_batch(np.ones((2, 5)), np.ones((2, 4)))
        with pytest.raises(ValueError, match="empty"):
            select_traditional_batch(np.ones((2, 0)), np.ones((2, 0)))

    def test_bits_follow_margin_sign(self):
        alpha = np.array([[5.0, 5.0], [1.0, 1.0]])
        beta = np.array([[1.0, 1.0], [5.0, 5.0]])
        batch = select_traditional_batch(alpha, beta)
        assert batch.bits.tolist() == [True, False]


class TestMaskedRowSums:
    def test_matches_scalar_np_sum(self):
        # Continuous data, widths straddling numpy's pairwise-summation
        # threshold: the helper must be bit-identical to np.sum over the
        # compressed row in every case (this is what the batch selectors'
        # byte-identity rests on — a numpy upgrade that changes summation
        # internals must fail here, loudly).
        rng = np.random.default_rng(42)
        for width in range(1, 17):
            values = rng.normal(1e-9, 1e-10, size=(64, width))
            mask = rng.random(size=(64, width)) < rng.random((64, 1))
            sums = masked_row_sums(values, mask)
            for i in range(64):
                assert sums[i] == np.sum(values[i, mask[i]])

    def test_empty_rows_sum_to_zero(self):
        values = np.full((3, 5), 7.0)
        mask = np.zeros((3, 5), dtype=bool)
        assert masked_row_sums(values, mask).tolist() == [0.0, 0.0, 0.0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal-shape"):
            masked_row_sums(np.ones((2, 3)), np.ones((3, 2), dtype=bool))
