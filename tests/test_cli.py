"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in (
            "table1", "table2", "fig3", "table3", "table4", "fig4",
            "temperature", "table5", "threshold", "ablations", "all",
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableX"])

    def test_flags(self):
        args = build_parser().parse_args(["fig4", "--method", "case2"])
        assert args.method == "case2"
        args = build_parser().parse_args(["table1", "--raw"])
        assert args.raw is True

    def test_pipeline_flags(self):
        args = build_parser().parse_args(
            ["all", "--jobs", "4", "--cache-dir", "/tmp/c", "--timings",
             "--tasks", "table5_bits,fig3_uniqueness"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.timings is True
        assert args.tasks == "table5_bits,fig3_uniqueness"

    def test_hardening_flags(self):
        args = build_parser().parse_args(
            ["all", "--retries", "3", "--backoff", "0.5",
             "--task-timeout", "30", "--resume", "run.jsonl",
             "--chaos", "7"]
        )
        assert args.retries == 3
        assert args.backoff == 0.5
        assert args.task_timeout == 30.0
        assert args.resume == "run.jsonl"
        assert args.chaos == 7

    def test_pipeline_flag_defaults(self):
        args = build_parser().parse_args(["all"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.timings is False
        assert args.tasks is None
        assert args.trace is None
        # hardening defaults reproduce the historical retry-once behaviour
        assert args.retries == 2
        assert args.backoff == 0.0
        assert args.task_timeout is None
        assert args.resume is None
        assert args.chaos is None

    def test_trace_and_bench_verbs_parse(self):
        args = build_parser().parse_args(["trace", "summarize", "t.jsonl"])
        assert args.command == "trace"
        assert args.trace_command == "summarize"
        assert args.trace_file == "t.jsonl"
        assert args.top == 10
        assert args.json is False
        args = build_parser().parse_args(
            ["trace", "summarize", "t.jsonl", "--json"]
        )
        assert args.json is True
        args = build_parser().parse_args(
            ["bench", "compare", "a.json", "b.json",
             "--threshold", "0.5", "--metric", "speedup"]
        )
        assert args.command == "bench"
        assert (args.old, args.new) == ("a.json", "b.json")
        assert args.threshold == 0.5
        assert args.metric == "speedup"

    def test_tool_verbs_require_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_jobs_requires_integer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["all", "--jobs", "many"])

    def test_all_help_text_snapshot(self, capsys):
        # Snapshot of the option surface of `ropuf all --help`: every flag
        # with its metavar, independent of argparse's line wrapping.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["all", "--help"])
        help_text = capsys.readouterr().out
        options = sorted(
            {
                word.rstrip(",]")
                for word in help_text.replace("[", " ").split()
                if word.startswith("--")
            }
        )
        assert options == [
            "--backend",
            "--backoff",
            "--cache-dir",
            "--chaos",
            "--data",
            "--help",
            "--jobs",
            "--method",
            "--output",
            "--profile",
            "--raw",
            "--resume",
            "--retries",
            "--task-timeout",
            "--tasks",
            "--timings",
            "--trace",
        ]
        for phrase in (
            "parallel worker processes",
            "on-disk result cache",
            "timing/cache metrics",
            "task subset",
            "span trace",
            "attempts per task",
            "backoff",
            "wall-clock timeout",
            "checkpoint journal",
            "chaos",
        ):
            assert phrase in help_text, phrase


class TestMain:
    def test_table5_prints_paper_values(self, capsys):
        assert main(["table5"]) == 0
        output = capsys.readouterr().out
        assert "80" in output and "1-out-of-8" in output
        assert "matches paper exactly: yes" in output

    def test_threshold_runs(self, capsys):
        assert main(["threshold"]) == 0
        output = capsys.readouterr().out
        assert "R_th" in output

    def test_data_flag_loads_measurement_files(self, capsys, tmp_path):
        from repro.datasets.export import export_vt_directory
        from repro.datasets.vtlike import VTLikeConfig, generate_vt_like

        # table3 uses n = 15 rings, so boards need the full 512 ROs.
        dataset = generate_vt_like(
            VTLikeConfig(
                nominal_boards=2,
                swept_boards=0,
                seed=7,
            )
        )
        export_vt_directory(dataset, tmp_path)
        assert main(["table3", "--data", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "HD distribution" in output

    def test_data_flag_missing_directory_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["table3", "--data", str(tmp_path / "nope")])


class TestMainAll:
    """The `all` command drives the pipeline and emits summary JSON.

    Tests stick to dataset-free tasks (table5_bits, sec4e_threshold) so no
    full synthetic dataset is generated.
    """

    def test_serial_path_prints_summary_json(self, capsys):
        assert main(["all", "--tasks", "table5_bits", "--jobs", "1"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["dataset"] is None
        assert summary["table5_bits"]["n=3"]["configurable"] == 80
        assert "_pipeline" not in summary

    def test_parallel_path_matches_serial(self, capsys):
        assert main(["all", "--tasks", "table5_bits", "--jobs", "1"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["all", "--tasks", "table5_bits", "--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel

    def test_timings_and_cache_flags(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["all", "--tasks", "table5_bits", "--cache-dir", cache_dir,
                "--timings"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["_pipeline"]["cache_hits"] == 0
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["_pipeline"]["cache_hits"] == 1
        assert warm["table5_bits"] == cold["table5_bits"]

    def test_output_flag_writes_file(self, capsys, tmp_path):
        out = tmp_path / "summary.json"
        assert main(
            ["all", "--tasks", "table5_bits", "--output", str(out)]
        ) == 0
        printed = json.loads(capsys.readouterr().out)
        assert json.loads(out.read_text()) == printed

    def test_unknown_task_fails_loudly(self):
        with pytest.raises(KeyError, match="unknown pipeline task"):
            main(["all", "--tasks", "not_a_task"])

    def test_trace_flag_writes_jsonl_and_summarize_reads_it(
        self, capsys, tmp_path
    ):
        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["all", "--tasks", "table5_bits", "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()  # drop the summary JSON
        assert trace_path.is_file()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        report = capsys.readouterr().out
        assert "top spans by self-time" in report
        assert "task:table5_bits" in report

    def test_trace_flag_leaves_tracing_disabled_after_run(self, capsys):
        from repro import obs

        assert main(["all", "--tasks", "table5_bits"]) == 0
        capsys.readouterr()
        assert not obs.tracing_enabled()
        assert not obs.metrics_enabled()

    def test_trace_summarize_json_flag(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["all", "--tasks", "table5_bits", "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()  # drop the summary JSON
        assert main(["trace", "summarize", str(trace_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["span_count"] > 0
        assert "task:table5_bits" in summary["by_name"]

    def test_profile_flag_writes_collapsed_stacks(self, capsys, tmp_path):
        profile = tmp_path / "run.collapsed"
        assert main(
            ["all", "--tasks", "table5_bits", "--profile", str(profile)]
        ) == 0
        capsys.readouterr()
        assert profile.is_file()


class TestTopCLI:
    """`ropuf top`: parser surface, rendering, and live polling."""

    def test_top_parser_defaults(self):
        args = build_parser().parse_args(["top", "--port", "9"])
        assert args.command == "top"
        assert args.host == "127.0.0.1"
        assert args.port == 9
        assert args.interval == 2.0
        assert args.once is False
        assert args.timeout == 5.0

    def test_top_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["top"])

    def test_render_top_dashboard(self):
        from repro.cli import _render_top

        doc = {
            "uptime_seconds": 12.5,
            "counters": {
                "serve.requests.attest": 120.0,
                "serve.errors": 1.0,
                "serve.coalesce.batches": 40.0,
                "backend.numpy.calls": 40.0,
            },
            "gauges": {},
            "histograms": {
                "serve.latency_ms.attest": {
                    "count": 120, "total": 180.0, "min": 0.5, "max": 5.0,
                    "mean": 1.5, "p50": 1.25, "p90": 2.0, "p99": 4.5,
                },
                "serve.coalesce.batch_size": {
                    "count": 40, "total": 120.0, "min": 1.0, "max": 8.0,
                    "mean": 3.0, "p50": 3.0, "p90": 6.0, "p99": 8.0,
                },
            },
            "rates": {
                "1s": {"serve.requests.attest": 10.0},
                "10s": {"serve.requests.attest": 12.0},
                "60s": {},
            },
        }
        text = _render_top(doc)
        assert "uptime 12.5s" in text
        assert "1s=10.0" in text and "10s=12.0" in text and "60s=0.0" in text
        assert "errors: 1 (0.00/s)" in text
        assert "attest" in text
        assert "1.25" in text and "4.50" in text  # p50 / p99 columns
        assert "batch size mean=3.0 max=8" in text
        assert "backend.numpy.calls 40" in text

    def test_top_once_against_live_server(self, capsys):
        from repro import obs
        from repro.serve import (
            AuthClient,
            AuthServer,
            AuthService,
            CRPStore,
            DeviceFarm,
            FleetConfig,
        )

        obs.reset_metrics()
        obs.enable_metrics()
        try:
            farm = DeviceFarm.from_config(FleetConfig(boards=1))
            service = AuthService(farm, CRPStore(None))
            service.enroll_fleet()
            with AuthServer(service).start() as server:
                host, port = server.address
                device = farm.device_ids[0]
                corner = next(iter(farm)).corners[0]
                with AuthClient(host, port) as client:
                    client.attest(device, corner)
                code = main(
                    ["top", "--once", "--host", host, "--port", str(port),
                     "--interval", "0.2"]
                )
            output = capsys.readouterr().out
            assert code == 0
            assert "ropuf top" in output
            assert "attest" in output
        finally:
            obs.disable_metrics()
            obs.reset_metrics()

    def test_top_unreachable_server_exits_nonzero(self, capsys):
        code = main(
            ["top", "--once", "--port", "1", "--timeout", "0.5"]
        )
        assert code == 1
        assert "ropuf top:" in capsys.readouterr().out
