"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in (
            "table1", "table2", "fig3", "table3", "table4", "fig4",
            "temperature", "table5", "threshold", "ablations", "all",
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableX"])

    def test_flags(self):
        args = build_parser().parse_args(["fig4", "--method", "case2"])
        assert args.method == "case2"
        args = build_parser().parse_args(["table1", "--raw"])
        assert args.raw is True


class TestMain:
    def test_table5_prints_paper_values(self, capsys):
        assert main(["table5"]) == 0
        output = capsys.readouterr().out
        assert "80" in output and "1-out-of-8" in output
        assert "matches paper exactly: yes" in output

    def test_threshold_runs(self, capsys):
        assert main(["threshold"]) == 0
        output = capsys.readouterr().out
        assert "R_th" in output

    def test_data_flag_loads_measurement_files(self, capsys, tmp_path):
        from repro.datasets.export import export_vt_directory
        from repro.datasets.vtlike import VTLikeConfig, generate_vt_like

        # table3 uses n = 15 rings, so boards need the full 512 ROs.
        dataset = generate_vt_like(
            VTLikeConfig(
                nominal_boards=2,
                swept_boards=0,
                seed=7,
            )
        )
        export_vt_directory(dataset, tmp_path)
        assert main(["table3", "--data", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "HD distribution" in output

    def test_data_flag_missing_directory_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["table3", "--data", str(tmp_path / "nope")])
