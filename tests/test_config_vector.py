"""Unit tests of configuration vectors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config_vector import ConfigVector


class TestConstruction:
    def test_from_string(self):
        v = ConfigVector.from_string("110")
        assert v.bits == (True, True, False)
        assert v.to_string() == "110"

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            ConfigVector.from_string("10a")
        with pytest.raises(ValueError):
            ConfigVector.from_string("")

    def test_from_array(self):
        v = ConfigVector.from_array(np.array([1, 0, 1]))
        assert v.to_string() == "101"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConfigVector(())

    def test_all_and_none(self):
        assert ConfigVector.all_selected(4).selected_count == 4
        assert ConfigVector.none_selected(4).selected_count == 0

    def test_leave_one_out(self):
        v = ConfigVector.leave_one_out(3, 1)
        assert v.to_string() == "101"

    def test_leave_one_out_bounds(self):
        with pytest.raises(ValueError):
            ConfigVector.leave_one_out(3, 3)
        with pytest.raises(ValueError):
            ConfigVector.leave_one_out(3, -1)

    def test_single(self):
        assert ConfigVector.single(4, 2).to_string() == "0010"


class TestViews:
    def test_len_iter_getitem(self):
        v = ConfigVector.from_string("101")
        assert len(v) == 3
        assert list(v) == [True, False, True]
        assert v[1] is False

    def test_selected_indices(self):
        assert ConfigVector.from_string("0110").selected_indices == (1, 2)

    def test_as_array_roundtrip(self):
        v = ConfigVector.from_string("0101")
        assert ConfigVector.from_array(v.as_array()) == v

    def test_oscillation_parity(self):
        assert ConfigVector.from_string("111").can_oscillate
        assert not ConfigVector.from_string("110").can_oscillate
        assert not ConfigVector.from_string("000").can_oscillate

    def test_str(self):
        assert str(ConfigVector.from_string("011")) == "011"

    def test_hashable(self):
        vectors = {ConfigVector.from_string("01"), ConfigVector.from_string("01")}
        assert len(vectors) == 1


class TestHammingDistance:
    def test_known_distance(self):
        a = ConfigVector.from_string("1100")
        b = ConfigVector.from_string("1010")
        assert a.hamming_distance(b) == 2

    def test_distance_to_self_zero(self):
        v = ConfigVector.from_string("10101")
        assert v.hamming_distance(v) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ConfigVector.from_string("11").hamming_distance(
                ConfigVector.from_string("111")
            )

    @given(st.lists(st.booleans(), min_size=1, max_size=16))
    def test_symmetry(self, bits):
        rng = np.random.default_rng(0)
        a = ConfigVector(tuple(bits))
        other = tuple(bool(b) for b in rng.integers(0, 2, len(bits)))
        b = ConfigVector(other)
        assert a.hamming_distance(b) == b.hamming_distance(a)

    @given(st.integers(1, 12))
    def test_complement_distance_is_length(self, n):
        a = ConfigVector.all_selected(n)
        b = ConfigVector.none_selected(n)
        assert a.hamming_distance(b) == n
