"""Shared-memory worker payload transport and the raw-result channel.

Covers the :mod:`repro.pipeline.shm` lifecycle protocol (encode/decode
round trips, consume-once unlinks, crash sweeps), the executor's
``canonical_result=False`` channel end-to-end over real worker processes,
and the satellite guarantees: ndarray-bearing results cache via the
binary pickle path, ``ipc.*`` counters surface in trace summaries, and a
worker killed mid-task never leaks a segment.
"""

from __future__ import annotations

import glob
import os
import pickle

import numpy as np
import pytest

from repro.pipeline import RetryPolicy, run_pipeline
from repro.pipeline import shm
from repro.pipeline.cache import ResultCache
from repro.pipeline.registry import _REGISTRY, TaskSpec, register_task

HAVE_DEV_SHM = os.path.isdir("/dev/shm")


def _segments() -> set[str]:
    return set(glob.glob("/dev/shm/ropuf_*"))


@pytest.fixture
def worker_session():
    """Install (and always tear down) a process-local shm session."""
    token = shm.new_token()
    shm.set_worker_session(token)
    try:
        yield shm.worker_session()
    finally:
        shm.set_worker_session(None)
        shm.sweep_segments(token)


@pytest.fixture
def scratch_task():
    """Register a disposable task; deregister on teardown."""
    registered = []

    def _register(name, fn, **kwargs):
        register_task(name, fn, **kwargs)
        registered.append(name)

    yield _register
    for name in registered:
        _REGISTRY.pop(name, None)


class TestEncodeDecode:
    def test_round_trip_replaces_only_large_arrays(self, worker_session):
        big = np.arange(100_000, dtype=np.float64)
        small = np.ones(4)
        payload = {
            "task": "t",
            "result": {"big": big, "small": small, "nested": [big[:50_000]]},
            "error": None,
        }
        encoded = shm.encode_payload(payload, threshold=1 << 18)
        assert isinstance(encoded["result"]["big"], shm.ShmArrayRef)
        assert isinstance(encoded["result"]["nested"][0], shm.ShmArrayRef)
        assert isinstance(encoded["result"]["small"], np.ndarray)
        assert encoded["ipc"]["segments"] == 2
        assert encoded["ipc"]["bytes_sent"] == big.nbytes + big[:50_000].nbytes

        # refs are what actually crosses the pipe: they must pickle small
        assert len(pickle.dumps(encoded["result"]["big"])) < 500

        decoded = shm.decode_payload(encoded)
        assert np.array_equal(decoded["result"]["big"], big)
        assert np.array_equal(decoded["result"]["nested"][0], big[:50_000])
        assert "ipc" not in decoded

    @pytest.mark.skipif(not HAVE_DEV_SHM, reason="no /dev/shm")
    def test_decode_unlinks_segments(self, worker_session):
        before = _segments()
        payload = shm.encode_payload(
            {"result": np.zeros(200_000)}, threshold=1
        )
        assert _segments() - before  # segment exists while the ref is live
        shm.decode_payload(payload)
        assert _segments() == before  # consume-once

    def test_below_threshold_is_passthrough(self, worker_session):
        payload = {"result": np.ones(8)}
        encoded = shm.encode_payload(payload, threshold=1 << 18)
        assert encoded["result"] is payload["result"]
        assert "ipc" not in encoded

    def test_no_session_is_passthrough(self):
        assert shm.worker_session() is None
        payload = {"result": np.zeros(1_000_000)}
        assert shm.encode_payload(payload) is payload

    def test_object_dtype_never_shared(self, worker_session):
        arr = np.array([{"a": 1}, None] * 100_000, dtype=object)
        encoded = shm.encode_payload({"result": arr}, threshold=1)
        assert isinstance(encoded["result"], np.ndarray)

    def test_vanished_segment_decodes_to_none_result(self, worker_session):
        encoded = shm.encode_payload(
            {"task": "t", "result": np.zeros(200_000), "error": None},
            threshold=1,
        )
        shm.sweep_segments(worker_session.token)  # simulate a reap sweep
        decoded = shm.decode_payload(encoded)
        assert decoded["result"] is None
        assert decoded["task"] == "t"

    @pytest.mark.skipif(not HAVE_DEV_SHM, reason="no /dev/shm")
    def test_sweep_is_scoped_by_token_and_pid(self):
        a, b = shm.new_token(), shm.new_token()
        shm.set_worker_session(a)
        shm.worker_session().share_array(np.zeros(1000))
        shm.set_worker_session(b)
        shm.worker_session().share_array(np.zeros(1000))
        shm.set_worker_session(None)
        try:
            assert shm.sweep_segments(a, pid=os.getpid() + 1) == 0
            assert shm.sweep_segments(a, pid=os.getpid()) == 1
            assert shm.sweep_segments(a) == 0
            assert shm.sweep_segments(b) == 1
        finally:
            shm.sweep_segments(a)
            shm.sweep_segments(b)


def _raw_array_task() -> dict:
    return {
        "delays": np.arange(300_000, dtype=np.float64).reshape(300, 1000),
        "meta": {"kind": "raw"},
    }


def _segment_leaker() -> dict:
    # Create a segment through the official worker API, then die without
    # ever sending the ref — the worst-case mid-task casualty.
    session = shm.worker_session()
    if session is not None:
        session.share_array(np.zeros(100_000))
    os._exit(17)


class TestExecutorRawChannel:
    def test_canonical_result_default_true(self):
        spec = TaskSpec(name="t", runner=lambda: {})
        assert spec.canonical_result

    @pytest.mark.slow
    def test_raw_result_rides_shm_to_parent(self, tmp_path, scratch_task):
        scratch_task(
            "raw_array_task",
            _raw_array_task,
            uses_dataset=False,
            canonical_result=False,
        )
        before = _segments() if HAVE_DEV_SHM else set()
        journal = tmp_path / "journal.jsonl"
        summary = run_pipeline(
            jobs=2,
            tasks=["raw_array_task"],
            cache_dir=tmp_path / "cache",
            journal=journal,
            timings=True,
        )
        result = summary["raw_array_task"]
        assert isinstance(result["delays"], np.ndarray)
        assert np.array_equal(result["delays"], _raw_array_task()["delays"])
        if HAVE_DEV_SHM:
            assert _segments() == before  # nothing leaked
        # shm actually carried the array (parent-side counters)
        counters = summary["_metrics"]["counters"]
        assert counters["ipc.shm_segments"] >= 1
        assert counters["ipc.bytes_received"] >= result["delays"].nbytes
        assert counters["ipc.bytes_sent"] == counters["ipc.bytes_received"]
        # raw results are cached via the binary flavour, never journaled
        cache = ResultCache(tmp_path / "cache")
        from repro.pipeline.cache import NO_DATASET_FINGERPRINT

        assert cache.binary_path(
            "raw_array_task", NO_DATASET_FINGERPRINT
        ).exists()
        if journal.exists():
            assert "raw_array_task" not in journal.read_text()

    @pytest.mark.slow
    def test_raw_result_resumes_from_binary_cache(self, tmp_path, scratch_task):
        calls = tmp_path / "calls"

        def counting_task() -> dict:
            with open(calls, "a") as handle:
                handle.write("x")
            return {"arr": np.ones(100_000)}

        scratch_task(
            "raw_cached_task",
            counting_task,
            uses_dataset=False,
            canonical_result=False,
        )
        first = run_pipeline(
            tasks=["raw_cached_task"], cache_dir=tmp_path / "cache"
        )
        second = run_pipeline(
            tasks=["raw_cached_task"], cache_dir=tmp_path / "cache"
        )
        assert calls.read_text() == "x"  # second run was a cache hit
        assert np.array_equal(
            first["raw_cached_task"]["arr"], second["raw_cached_task"]["arr"]
        )

    @pytest.mark.slow
    @pytest.mark.skipif(not HAVE_DEV_SHM, reason="no /dev/shm")
    def test_worker_killed_mid_task_leaks_no_segment(
        self, tmp_path, scratch_task
    ):
        scratch_task(
            "segment_leaker",
            _segment_leaker,
            uses_dataset=False,
            canonical_result=False,
        )
        before = _segments()
        summary = run_pipeline(
            jobs=2,
            tasks=["segment_leaker"],
            policy=RetryPolicy(max_attempts=2),
        )
        assert summary["segment_leaker"]["error_type"] == "WorkerCrash"
        assert _segments() == before  # reap + shutdown sweeps collected it

    @pytest.mark.slow
    def test_trace_summary_surfaces_ipc_block(self, tmp_path, scratch_task):
        from repro.obs.report import format_trace_summary, summarize_trace

        scratch_task(
            "raw_traced_task",
            _raw_array_task,
            uses_dataset=False,
            canonical_result=False,
        )
        trace_path = tmp_path / "trace.jsonl"
        run_pipeline(jobs=2, tasks=["raw_traced_task"], trace=trace_path)
        summary = summarize_trace(trace_path)
        assert summary["ipc"] is not None
        assert summary["ipc"]["shm_segments"] >= 1
        assert "ipc:" in format_trace_summary(summary)


class TestBinaryCacheFlavour:
    def test_ndarray_result_stores_pickle5_and_loads_equal(self, tmp_path):
        cache = ResultCache(tmp_path)
        arr = np.random.default_rng(0).normal(size=(256, 512))
        path = cache.store("raw", "fp", {"delays": arr, "n": 2})
        assert path.suffix == ".pkl"
        out = cache.load("raw", "fp")
        assert np.array_equal(out["delays"], arr)
        assert out["n"] == 2

    def test_size_regression_representative_sweep_payload(self, tmp_path):
        # Protocol 5 stores the array as one framed contiguous buffer: the
        # entry must stay within 5% of raw nbytes for a fleet-scale sweep
        # payload.  (Protocol gated below so an accidental default-protocol
        # downgrade fails loudly.)
        from repro.pipeline.cache import PICKLE_PROTOCOL

        assert PICKLE_PROTOCOL == 5
        cache = ResultCache(tmp_path)
        sweep = {
            "top": np.zeros((24, 4096)),
            "bottom": np.zeros((24, 4096)),
            "ops": [[1.2, 25.0]] * 24,
        }
        raw_bytes = sweep["top"].nbytes + sweep["bottom"].nbytes
        path = cache.store("sweep", "fp", sweep)
        assert path.stat().st_size <= raw_bytes * 1.05

    def test_metadata_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        cache.store("raw", "fp", {"a": np.ones(4)})
        assert ResultCache(tmp_path, version="2").load("raw", "fp") is None

    def test_corrupt_binary_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store("raw", "fp", {"a": np.ones(4)})
        path.write_bytes(b"\x80\x05 truncated garbage")
        assert cache.load("raw", "fp") is None
        assert path.with_name(f"{path.name}.corrupt").exists()
        assert not path.exists()

    def test_flavour_switch_unlinks_stale_sibling(self, tmp_path):
        cache = ResultCache(tmp_path)
        binary = cache.store("t", "fp", {"a": np.ones(4)})
        plain = cache.store("t", "fp", {"a": [1, 2]})
        assert plain.suffix == ".json" and not binary.exists()
        assert cache.load("t", "fp") == {"a": [1, 2]}
        binary = cache.store("t", "fp", {"a": np.ones(4)})
        assert binary.suffix == ".pkl" and not plain.exists()
        assert np.array_equal(cache.load("t", "fp")["a"], np.ones(4))
