"""Tests of the offset-aware ChipROPUF enrollment path."""

import numpy as np
import pytest

from repro.core.measurement import DelayMeasurer
from repro.core.pairing import RingAllocation
from repro.core.puf import ChipROPUF
from repro.silicon.fabrication import FabricationProcess
from repro.variation.environment import NOMINAL_OPERATING_POINT
from repro.variation.noise import NoiselessMeasurement


@pytest.fixture(scope="module")
def offset_chip():
    return FabricationProcess().fabricate(
        168, np.random.default_rng(77), name="offsetchip"
    )


def make_puf(chip, **kwargs):
    allocation = RingAllocation(
        stage_count=7, ring_count=24, layout="interleaved"
    )
    measurer = DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)
    return ChipROPUF(
        chip=chip, allocation=allocation, measurer=measurer, **kwargs
    )


def actual_margins(puf, enrollment):
    """Physical |chain delay difference| of each configured pair."""
    values = []
    for pair, selection in enumerate(enrollment.selections):
        top_idx, bottom_idx = puf.allocation.pair_rings(pair)
        top = puf.ring(top_idx).chain_delay(selection.top_config)
        bottom = puf.ring(bottom_idx).chain_delay(selection.bottom_config)
        values.append(abs(top - bottom))
    return np.array(values)


class TestOffsetAware:
    def test_never_worse_than_paper_selector(self, offset_chip):
        paper = make_puf(offset_chip, method="case2")
        aware = make_puf(offset_chip, method="case2", offset_aware=True)
        paper_margins = actual_margins(paper, paper.enroll())
        aware_margins = actual_margins(aware, aware.enroll())
        assert np.all(aware_margins >= paper_margins - 1e-15)

    def test_margin_field_matches_physical_margin(self, offset_chip):
        aware = make_puf(offset_chip, method="case1", offset_aware=True)
        enrollment = aware.enroll()
        physical = actual_margins(aware, enrollment)
        assert np.allclose(np.abs(enrollment.margins), physical, rtol=1e-6)

    def test_bits_match_margin_signs(self, offset_chip):
        aware = make_puf(offset_chip, method="case2", offset_aware=True)
        enrollment = aware.enroll()
        assert np.array_equal(enrollment.bits, enrollment.margins > 0)

    def test_response_reproduces_bits(self, offset_chip):
        aware = make_puf(offset_chip, method="case2", offset_aware=True)
        enrollment = aware.enroll()
        response = aware.response(NOMINAL_OPERATING_POINT, enrollment)
        assert np.array_equal(response, enrollment.bits)

    def test_incompatible_with_require_odd(self, offset_chip):
        with pytest.raises(ValueError, match="require_odd"):
            make_puf(offset_chip, method="case1", offset_aware=True, require_odd=True)

    def test_rejected_for_traditional(self, offset_chip):
        with pytest.raises(ValueError, match="traditional"):
            make_puf(offset_chip, method="traditional", offset_aware=True)
