"""Tests of repro.faults: fault models, FaultPlan determinism, the no-op
byte-identity guarantee, voted-response recovery, and the chaos plan."""

import numpy as np
import pytest

from repro import obs
from repro.core.measurement import DelayMeasurer
from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF, ChipROPUF
from repro.core.ring import ConfigurableRO
from repro.faults import (
    AgingDrift,
    ChaosPlan,
    CounterGlitch,
    Dropout,
    FaultPlan,
    StuckAt,
    ThermalExcursion,
    chaos_worker_action,
)
from repro.variation.environment import (
    NOMINAL_OPERATING_POINT,
    OperatingPoint,
)
from repro.variation.noise import GaussianNoise, NoiselessMeasurement

SWEEP_OPS = [
    NOMINAL_OPERATING_POINT,
    OperatingPoint(voltage=1.08, temperature=45.0),
    OperatingPoint(voltage=1.32, temperature=5.0),
]


def apply_once(model, values, seed=0):
    plan = FaultPlan(seed=seed, models=[model])
    return plan.apply(np.asarray(values, dtype=float))


class TestFaultModels:
    def test_counter_glitch_scales_within_band(self):
        values = np.full(200, 2.0)
        faulted = apply_once(CounterGlitch(probability=1.0), values)
        ratio = faulted / values
        assert np.all(ratio >= 3.0) and np.all(ratio <= 30.0)
        assert np.all(values == 2.0)  # input untouched

    def test_stuck_at_reports_constant(self):
        faulted = apply_once(StuckAt(probability=1.0, value=7.5), np.ones(10))
        assert np.all(faulted == 7.5)

    def test_dropout_is_nan(self):
        faulted = apply_once(Dropout(probability=1.0), np.ones(10))
        assert np.all(np.isnan(faulted))

    def test_thermal_excursion_is_common_mode(self):
        values = np.linspace(1.0, 2.0, 50)
        faulted = apply_once(
            ThermalExcursion(probability=1.0, drift_sigma=0.05), values, seed=3
        )
        ratio = faulted / values
        assert np.allclose(ratio, ratio[0])
        assert not np.isclose(ratio[0], 1.0)

    def test_aging_drift_grows_with_session(self):
        plan = FaultPlan(seed=0, models=[AgingDrift(rate=1e-3)])
        first = plan.apply(np.ones(10))
        later = plan.apply(np.ones(10))
        assert np.allclose(first, 1.0)  # no elements observed yet
        assert np.allclose(later, 1.0 + 1e-3 * 10)

    def test_rate_tuning_does_not_reshuffle_other_models(self):
        # The draw-order contract: a model consumes the same number of
        # draws whatever its probability, so tuning one model's rate
        # never moves the faults another model injects.
        masks = []
        for glitch_p in (0.0, 0.5):
            plan = FaultPlan(
                seed=11,
                models=[CounterGlitch(probability=glitch_p), Dropout(probability=0.3)],
            )
            masks.append(np.isnan(plan.apply(np.ones(500))))
        assert np.array_equal(masks[0], masks[1])

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: CounterGlitch(probability=1.5),
            lambda: CounterGlitch(min_factor=5.0, max_factor=2.0),
            lambda: CounterGlitch(min_factor=0.0),
            lambda: StuckAt(probability=-0.1),
            lambda: Dropout(probability=2.0),
            lambda: ThermalExcursion(drift_sigma=-1.0),
            lambda: AgingDrift(rate=-1e-9),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            bad()


class TestFaultPlan:
    def _models(self):
        return [
            CounterGlitch(probability=0.05),
            StuckAt(probability=0.02),
            Dropout(probability=0.02),
        ]

    def test_fixed_seed_reproduces_faults_exactly(self):
        shapes = [(40,), (7, 3), (40,), (5,)]
        runs = []
        for _ in range(2):
            plan = FaultPlan(seed=42, models=self._models())
            runs.append(
                [plan.apply(np.ones(shape)).tobytes() for shape in shapes]
            )
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        one = FaultPlan(seed=1, models=self._models()).apply(np.ones(300))
        two = FaultPlan(seed=2, models=self._models()).apply(np.ones(300))
        assert one.tobytes() != two.tobytes()

    def test_reset_rewinds_the_stream(self):
        plan = FaultPlan(seed=9, models=self._models())
        first = plan.apply(np.ones(100))
        assert plan.total_injected >= 1
        plan.reset()
        assert plan.total_injected == 0
        again = plan.apply(np.ones(100))
        assert np.array_equal(first, again, equal_nan=True)

    def test_injected_bookkeeping(self):
        plan = FaultPlan(seed=0, models=[Dropout(probability=1.0)])
        plan.apply(np.ones(25))
        assert plan.injected == {"dropout": 25}
        assert plan.total_injected == 25

    def test_noop_returns_the_input_object(self):
        values = np.ones(10)
        for plan in (
            FaultPlan(seed=0, models=[]),
            FaultPlan(seed=0, models=self._models(), enabled=False),
        ):
            assert plan.is_noop
            assert plan.apply(values) is values
        assert not FaultPlan(seed=0, models=self._models()).is_noop

    def test_metrics_reported(self):
        obs.enable_metrics()
        obs.reset_metrics()
        try:
            plan = FaultPlan(seed=0, models=[Dropout(probability=1.0)])
            plan.apply(np.ones(4))
            counters = obs.snapshot()["counters"]
            assert counters["faults.injected.dropout"] == 4
        finally:
            obs.disable_metrics()
            obs.reset_metrics()


class TestNoopByteIdentity:
    """A no-op plan must leave every measurement path byte-identical."""

    def _board(self, seed=5, sigma=5e-4):
        data_rng = np.random.default_rng(seed)
        delays = data_rng.normal(1.0, 0.02, 300)
        return BoardROPUF(
            delay_provider=lambda op: delays,
            allocation=RingAllocation(stage_count=3, ring_count=100),
            response_noise=GaussianNoise(relative_sigma=sigma),
            rng=np.random.default_rng(seed + 1),
        )

    def test_response_sweep_byte_identical(self):
        plain = self._board()
        wrapped = FaultPlan(seed=0, models=[]).attach_to_board(self._board())
        enrollment = plain.enroll()
        expected = plain.response_sweep(SWEEP_OPS, enrollment)
        observed = wrapped.response_sweep(SWEEP_OPS, wrapped.enroll())
        assert observed.tobytes() == expected.tobytes()

    def test_response_voted_byte_identical(self):
        plain = self._board()
        wrapped = FaultPlan(seed=0, models=[]).attach_to_board(self._board())
        enrollment = plain.enroll()
        expected = plain.response_voted(NOMINAL_OPERATING_POINT, enrollment, votes=5)
        observed = wrapped.response_voted(
            NOMINAL_OPERATING_POINT, wrapped.enroll(), votes=5
        )
        assert observed.tobytes() == expected.tobytes()

    def test_reliable_mask_byte_identical(self):
        plain = self._board()
        wrapped = FaultPlan(seed=0, models=[]).attach_to_board(self._board())
        expected = plain.enroll().reliable_mask(1e-3)
        observed = wrapped.enroll().reliable_mask(1e-3)
        assert observed.tobytes() == expected.tobytes()

    def test_chip_enroll_sweep_byte_identical(self, chip):
        plain = ChipROPUF.deploy(chip, stage_count=4)
        plan = FaultPlan(seed=0, models=[])
        wrapped = plan.attach_to_chip(ChipROPUF.deploy(chip, stage_count=4))
        expected = plain.enroll_sweep(SWEEP_OPS)
        observed = wrapped.enroll_sweep(SWEEP_OPS)
        for ours, theirs in zip(observed, expected):
            assert ours.bits.tobytes() == theirs.bits.tobytes()
            assert ours.margins.tobytes() == theirs.margins.tobytes()

    def test_chip_enroll_batch_byte_identical(self, chip):
        plain = ChipROPUF.deploy(chip, stage_count=4)
        wrapped = FaultPlan(seed=0, models=[]).attach_to_chip(
            ChipROPUF.deploy(chip, stage_count=4)
        )
        expected = plain.enroll_batch()
        observed = wrapped.enroll_batch()
        assert observed.bits.tobytes() == expected.bits.tobytes()
        assert observed.margins.tobytes() == expected.margins.tobytes()

    def test_attach_leaves_original_untouched(self):
        board = self._board()
        plan = FaultPlan(seed=0, models=[Dropout(probability=1.0)])
        wrapped = plan.attach_to_board(board)
        assert isinstance(board.response_noise, GaussianNoise)
        assert wrapped is not board


class TestFaultedMeasurements:
    def test_wrapped_measurer_faults_deterministically(self, chip):
        ring = ConfigurableRO(chip=chip, unit_indices=np.arange(6))
        runs = []
        for _ in range(2):
            plan = FaultPlan(seed=13, models=[CounterGlitch(probability=0.2)])
            measurer = plan.wrap_measurer(
                DelayMeasurer(
                    noise=GaussianNoise(relative_sigma=5e-4),
                    repeats=3,
                    rng=np.random.default_rng(7),
                )
            )
            from repro.core.measurement import leave_one_out_vectors

            runs.append(
                measurer.chain_delays_sequential(
                    ring, leave_one_out_vectors(ring.stage_count)
                )
            )
        assert runs[0].tobytes() == runs[1].tobytes()

    def test_faulted_stream_independent_of_noise_stream(self, chip):
        # The faulted measurer shares the *noise* RNG with the plain one,
        # so the underlying noise draws are the same stream; only the
        # fault transformation differs.
        ring = ConfigurableRO(chip=chip, unit_indices=np.arange(6))
        from repro.core.measurement import leave_one_out_vectors

        configs = leave_one_out_vectors(ring.stage_count)
        plain = DelayMeasurer(
            noise=NoiselessMeasurement(), repeats=1, rng=np.random.default_rng(3)
        )
        plan = FaultPlan(seed=1, models=[StuckAt(probability=1.0, value=0.0)])
        faulted = plan.wrap_measurer(
            DelayMeasurer(
                noise=NoiselessMeasurement(),
                repeats=1,
                rng=np.random.default_rng(3),
            )
        )
        clean = plain.chain_delays_sequential(ring, configs)
        stuck = faulted.chain_delays_sequential(ring, configs)
        assert np.all(stuck == 0.0)
        assert np.all(clean > 0.0)


class TestVotedResponseRecovery:
    """Majority voting recovers single-observation bit-flip faults."""

    def _board(self, seed=5):
        data_rng = np.random.default_rng(seed)
        delays = data_rng.normal(1.0, 0.02, 300)
        return BoardROPUF(
            delay_provider=lambda op: delays,
            allocation=RingAllocation(stage_count=3, ring_count=100),
            response_noise=GaussianNoise(relative_sigma=1e-5),
            rng=np.random.default_rng(seed + 1),
        )

    def test_voting_recovers_single_observation_flips(self):
        # A stuck-at-zero readout flips the comparison of any affected
        # pair for that one evaluation.  At ~1% per element, a 9-vote
        # majority needs 5 faulted evaluations of the same bit — vastly
        # unlikely — while single-shot responses keep getting hit.
        plan = FaultPlan(seed=21, models=[StuckAt(probability=0.01, value=0.0)])
        board = plan.attach_to_board(self._board())
        enrollment = board.enroll()
        single_flips = 0
        for _ in range(20):
            single = board.response(NOMINAL_OPERATING_POINT, enrollment)
            single_flips += int(np.sum(single != enrollment.bits))
        assert single_flips > 0  # the faults really do flip raw reads
        plan.reset()
        voted = board.response_voted(NOMINAL_OPERATING_POINT, enrollment, votes=9)
        assert np.array_equal(voted, enrollment.bits)
        assert plan.total_injected > 0


class TestChaosPlan:
    TASKS = ["alpha", "bravo", "charlie", "delta"]

    def test_assignment_deterministic(self):
        one = ChaosPlan(seed=3).assign(list(self.TASKS))
        two = ChaosPlan(seed=3).assign(list(reversed(self.TASKS)))
        assert one == two

    def test_crash_and_hang_land_on_distinct_tasks(self):
        for seed in range(20):
            assignment = ChaosPlan(seed=seed).assign(list(self.TASKS))
            assert assignment.crash_task != assignment.hang_task

    def test_disabled_faults_unassigned(self):
        plan = ChaosPlan(seed=0, crash=False, hang=False, corrupt_cache=False)
        assignment = plan.assign(list(self.TASKS))
        assert assignment.crash_task is None
        assert assignment.hang_task is None
        assert assignment.corrupt_task is None

    def test_empty_task_list_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan(seed=0).assign([])

    def test_worker_action_fires_on_first_dispatch_only(self):
        assignment = ChaosPlan(seed=5).assign(list(self.TASKS))
        assert chaos_worker_action(assignment, assignment.crash_task, 1) == "crash"
        assert chaos_worker_action(assignment, assignment.crash_task, 2) is None
        assert chaos_worker_action(assignment, assignment.hang_task, 1) == "hang"
        assert chaos_worker_action(assignment, assignment.hang_task, 2) is None
        clean = [
            t
            for t in self.TASKS
            if t not in (assignment.crash_task, assignment.hang_task)
        ]
        assert chaos_worker_action(assignment, clean[0], 1) is None
        assert chaos_worker_action(None, "anything", 1) is None

    def test_single_task_stacks_crash_then_hang(self):
        assignment = ChaosPlan(seed=0).assign(["solo"])
        assert assignment.crash_task == assignment.hang_task == "solo"
        assert chaos_worker_action(assignment, "solo", 1) == "crash"
        assert chaos_worker_action(assignment, "solo", 2) == "hang"
        assert chaos_worker_action(assignment, "solo", 3) is None
