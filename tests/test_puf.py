"""Unit and integration tests of the PUF enrollment/response life cycle."""

import numpy as np
import pytest

from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF, ChipROPUF, Enrollment
from repro.core.selection import select_case1
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from repro.variation.noise import GaussianNoise, NoiselessMeasurement
from repro.core.measurement import DelayMeasurer


def make_board_puf(data_rng, n_units=60, stage_count=3, method="case1", **kwargs):
    base = data_rng.normal(1.0, 0.02, n_units)
    sensitivity = data_rng.normal(0.05, 0.01, n_units)

    def provider(op):
        # simple linear drift model: slower at low voltage, device-specific
        return base * (1.0 + sensitivity * (1.20 - op.voltage))

    allocation = RingAllocation(
        stage_count=stage_count, ring_count=n_units // stage_count // 2 * 2
    )
    return BoardROPUF(
        delay_provider=provider, allocation=allocation, method=method, **kwargs
    )


class TestBoardROPUF:
    def test_bit_count(self, rng):
        puf = make_board_puf(rng)
        assert puf.bit_count == puf.allocation.pair_count

    def test_enroll_shapes(self, rng):
        puf = make_board_puf(rng)
        enrollment = puf.enroll()
        assert enrollment.bit_count == puf.bit_count
        assert len(enrollment.selections) == puf.bit_count
        assert enrollment.margins.shape == enrollment.bits.shape

    def test_bits_match_margin_signs(self, rng):
        puf = make_board_puf(rng)
        enrollment = puf.enroll()
        assert np.array_equal(enrollment.bits, enrollment.margins > 0)

    def test_response_at_enrollment_corner_is_reference(self, rng):
        puf = make_board_puf(rng)
        enrollment = puf.enroll()
        response = puf.response(NOMINAL_OPERATING_POINT, enrollment)
        assert np.array_equal(response, enrollment.bits)

    def test_response_noise_can_flip_marginal_bits(self, rng):
        noisy = make_board_puf(
            np.random.default_rng(5),
            method="traditional",
            response_noise=GaussianNoise(relative_sigma=0.05),
            rng=np.random.default_rng(6),
        )
        enrollment = noisy.enroll()
        flips = 0
        for _ in range(20):
            response = noisy.response(NOMINAL_OPERATING_POINT, enrollment)
            flips += int(np.sum(response != enrollment.bits))
        assert flips > 0  # 5% jitter on ~2% margins must flip something

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown method"):
            make_board_puf(rng, method="quantum")

    def test_configurable_more_stable_than_traditional(self):
        harsh = OperatingPoint(0.90, 25.0)
        flips = {}
        for method in ("case1", "traditional"):
            puf = make_board_puf(
                np.random.default_rng(42), n_units=600, stage_count=5,
                method=method,
            )
            enrollment = puf.enroll()
            response = puf.response(harsh, enrollment)
            flips[method] = int(np.sum(response != enrollment.bits))
        assert flips["case1"] <= flips["traditional"]

    def test_require_odd_propagates(self, rng):
        puf = make_board_puf(rng, method="case1", require_odd=True)
        enrollment = puf.enroll()
        for selection in enrollment.selections:
            assert selection.selected_count % 2 == 1

    @pytest.mark.parametrize("stage_count", [4, 6])
    def test_traditional_require_odd_never_latches(self, rng, stage_count):
        """Regression: method='traditional' used to drop require_odd, so even
        stage counts produced all-selected (even) rings that cannot free-run."""
        puf = make_board_puf(
            rng,
            n_units=stage_count * 20,
            stage_count=stage_count,
            method="traditional",
            require_odd=True,
        )
        enrollment = puf.enroll()
        assert len(enrollment.selections) > 0
        for selection in enrollment.selections:
            assert selection.selected_count % 2 == 1
            assert selection.top_config.can_oscillate

    def test_reliable_mask(self, rng):
        puf = make_board_puf(rng)
        enrollment = puf.enroll()
        mask = enrollment.reliable_mask(0.0)
        assert mask.all()
        huge = enrollment.reliable_mask(1e9)
        assert not huge.any()
        with pytest.raises(ValueError):
            enrollment.reliable_mask(-1.0)


class TestReliableMaskEdgeCases:
    """Sec. IV.E semantics: |margin| >= R_th, with R_th = 0 trivially true."""

    def _enrollment(self, margins):
        selections = [
            select_case1(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
            for _ in margins
        ]
        return Enrollment(
            operating_point=NOMINAL_OPERATING_POINT,
            selections=selections,
            bits=np.array([m > 0 for m in margins]),
            margins=np.array(margins),
        )

    def test_zero_threshold_is_all_true_even_for_zero_margin(self):
        enrollment = self._enrollment([0.0, -0.5, 2.0])
        assert enrollment.reliable_mask(0.0).all()

    def test_threshold_compares_magnitude(self):
        enrollment = self._enrollment([0.4, -0.5, 2.0])
        assert enrollment.reliable_mask(0.5).tolist() == [False, True, True]

    def test_negative_threshold_rejected(self):
        enrollment = self._enrollment([1.0])
        with pytest.raises(ValueError, match="non-negative"):
            enrollment.reliable_mask(-0.1)


class TestEnrollmentValidation:
    def test_misaligned_arrays_rejected(self):
        selection = select_case1(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
        with pytest.raises(ValueError, match="align"):
            Enrollment(
                operating_point=NOMINAL_OPERATING_POINT,
                selections=[selection],
                bits=np.array([True, False]),
                margins=np.array([0.1]),
            )


class TestChipROPUF:
    def test_deploy_uses_whole_chip(self, chip):
        puf = ChipROPUF.deploy(chip, stage_count=4)
        assert puf.allocation.unit_count <= chip.unit_count
        assert puf.bit_count >= 1

    def test_deploy_rejects_oversized_rings(self, chip):
        with pytest.raises(ValueError, match="cannot host"):
            ChipROPUF.deploy(chip, stage_count=64)

    def test_allocation_overflow_rejected(self, chip):
        allocation = RingAllocation(stage_count=16, ring_count=16)
        with pytest.raises(ValueError, match="units"):
            ChipROPUF(chip=chip, allocation=allocation)

    def test_unknown_method_rejected(self, chip):
        with pytest.raises(ValueError, match="unknown method"):
            ChipROPUF.deploy(chip, stage_count=4, method="magic")

    def test_enroll_and_reproduce_noiseless(self, chip):
        measurer = DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)
        puf = ChipROPUF.deploy(chip, stage_count=4, measurer=measurer)
        enrollment = puf.enroll()
        response = puf.response(NOMINAL_OPERATING_POINT, enrollment)
        assert np.array_equal(response, enrollment.bits)

    def test_margins_exceed_traditional(self, chip):
        measurer = DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)
        configurable = ChipROPUF.deploy(
            chip, stage_count=4, method="case1", measurer=measurer
        )
        traditional = ChipROPUF.deploy(
            chip, stage_count=4, method="traditional", measurer=measurer
        )
        c_margins = np.abs(configurable.enroll().margins)
        t_margins = np.abs(traditional.enroll().margins)
        assert np.mean(c_margins) > np.mean(t_margins)

    def test_voltage_sweep_stability_ordering(self, chip):
        # Configurable flips at most as many bits as traditional across the
        # full voltage sweep (margin maximisation is the paper's claim).
        corners = [OperatingPoint(v, 25.0) for v in (0.98, 1.08, 1.32, 1.44)]
        flips = {}
        for method in ("case2", "traditional"):
            puf = ChipROPUF.deploy(
                chip,
                stage_count=4,
                method=method,
                measurer=DelayMeasurer(
                    noise=NoiselessMeasurement(), repeats=1
                ),
            )
            enrollment = puf.enroll()
            total = 0
            for corner in corners:
                response = puf.response(corner, enrollment)
                total += int(np.sum(response != enrollment.bits))
            flips[method] = total
        assert flips["case2"] <= flips["traditional"]

    def test_ring_accessor(self, chip):
        puf = ChipROPUF.deploy(chip, stage_count=4)
        ring = puf.ring(0)
        assert ring.stage_count == 4
        assert ring.unit_indices.tolist() == [0, 1, 2, 3]
