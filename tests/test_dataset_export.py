"""Round-trip tests of the dataset exporter and loader."""

import numpy as np
import pytest

from repro.datasets.export import export_vt_directory
from repro.datasets.vtlike import (
    VTLikeConfig,
    generate_vt_like,
    load_vt_directory,
)
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_vt_like(
        VTLikeConfig(
            nominal_boards=3,
            swept_boards=1,
            ro_count=32,
            grid_columns=8,
            grid_rows=4,
            seed=55,
        )
    )


class TestExportRoundTrip:
    def test_file_count(self, tiny_dataset, tmp_path):
        written = export_vt_directory(tiny_dataset, tmp_path)
        # 3 nominal-only boards + 1 swept board with 25 corners + layout
        assert len(written) == 3 + 25 + 1

    def test_round_trip_delays(self, tiny_dataset, tmp_path):
        export_vt_directory(tiny_dataset, tmp_path)
        loaded = load_vt_directory(tmp_path)
        assert loaded.board_count == tiny_dataset.board_count
        for board in tiny_dataset.boards:
            original = board.delays_at(NOMINAL_OPERATING_POINT)
            restored = loaded.board(board.name).delays_at(NOMINAL_OPERATING_POINT)
            assert np.allclose(restored, original, rtol=1e-6)

    def test_round_trip_swept_corners(self, tiny_dataset, tmp_path):
        export_vt_directory(tiny_dataset, tmp_path)
        loaded = load_vt_directory(tmp_path)
        swept = tiny_dataset.swept_boards[0]
        restored = loaded.board(swept.name)
        assert restored.is_swept
        corner = OperatingPoint(0.98, 65.0)
        assert np.allclose(
            restored.delays_at(corner), swept.delays_at(corner), rtol=1e-6
        )

    def test_overwrite_protection(self, tiny_dataset, tmp_path):
        export_vt_directory(tiny_dataset, tmp_path)
        with pytest.raises(FileExistsError):
            export_vt_directory(tiny_dataset, tmp_path)
        export_vt_directory(tiny_dataset, tmp_path, overwrite=True)

    def test_experiments_run_on_reloaded_data(self, tiny_dataset, tmp_path):
        from repro.experiments.common import PipelineConfig, board_enrollment

        export_vt_directory(tiny_dataset, tmp_path)
        loaded = load_vt_directory(tmp_path)
        config = PipelineConfig(stage_count=2, method="case1", require_odd=False)
        for board in tiny_dataset.nominal_boards:
            original = board_enrollment(board, config, tiny_dataset.nominal)
            reloaded = board_enrollment(
                loaded.board(board.name), config, loaded.nominal
            )
            # File precision perturbs delays by ~1e-9 relative, which can
            # legitimately flip near-tie bits; solid-margin bits must agree.
            solid = np.abs(original.margins) > 1e-13  # 0.1 ps of margin
            assert np.array_equal(
                original.bits[solid], reloaded.bits[solid]
            )
