"""Tests of multi-corner enrollment selection."""

import numpy as np
import pytest

from repro.core.multicorner import (
    select_case1_multicorner,
    select_multicorner_exhaustive,
    worst_case_margin,
)
from repro.core.selection import select_case1


def random_corners(rng, corners=3, units=6, drift=0.2):
    base_alpha = rng.normal(1.0, 0.1, units)
    base_beta = rng.normal(1.0, 0.1, units)
    alphas, betas = [], []
    for _ in range(corners):
        alphas.append(base_alpha * (1 + rng.normal(0, drift, units) * 0.1))
        betas.append(base_beta * (1 + rng.normal(0, drift, units) * 0.1))
    return alphas, betas


class TestWorstCaseMargin:
    def test_single_corner_is_plain_margin(self):
        deltas = np.array([[0.5, -0.2, 0.1]])
        selected = np.array([True, False, True])
        assert worst_case_margin(deltas, selected) == pytest.approx(0.6)

    def test_picks_weakest_corner(self):
        deltas = np.array([[1.0, 1.0], [0.1, 0.1]])
        selected = np.array([True, True])
        assert worst_case_margin(deltas, selected) == pytest.approx(0.2)

    def test_sign_flip_across_corners_reports_weakest(self):
        deltas = np.array([[1.0], [-0.3]])
        selected = np.array([True])
        assert worst_case_margin(deltas, selected) == pytest.approx(-0.3)


class TestSelectMulticorner:
    def test_single_corner_matches_case1(self, rng):
        for _ in range(30):
            alpha = rng.normal(1.0, 0.1, 6)
            beta = rng.normal(1.0, 0.1, 6)
            multi = select_case1_multicorner([alpha], [beta])
            single = select_case1(alpha, beta)
            assert abs(multi.margin) >= single.abs_margin - 1e-12

    def test_near_exhaustive_on_small_rings(self, rng):
        gaps = []
        for _ in range(25):
            alphas, betas = random_corners(rng, corners=3, units=6)
            greedy = select_case1_multicorner(alphas, betas)
            brute = select_multicorner_exhaustive(alphas, betas)
            gaps.append(abs(greedy.margin) / max(abs(brute.margin), 1e-30))
        assert np.mean(gaps) > 0.9
        assert np.min(gaps) > 0.5

    def test_beats_single_corner_worst_case(self, rng):
        wins = 0
        trials = 40
        for _ in range(trials):
            alphas, betas = random_corners(rng, corners=4, units=8, drift=1.0)
            deltas = np.stack([a - b for a, b in zip(alphas, betas)])
            multi = select_case1_multicorner(alphas, betas)
            single = select_case1(alphas[0], betas[0])
            single_worst = abs(
                worst_case_margin(deltas, single.top_config.as_array())
            )
            if abs(multi.margin) >= single_worst - 1e-15:
                wins += 1
        assert wins == trials  # never worse than first-corner enrollment

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            select_case1_multicorner([], [])
        with pytest.raises(ValueError):
            select_case1_multicorner(
                [rng.normal(1, 0.1, 4)], [rng.normal(1, 0.1, 5)]
            )
        with pytest.raises(ValueError):
            select_case1_multicorner(
                [rng.normal(1, 0.1, 4), rng.normal(1, 0.1, 5)],
                [rng.normal(1, 0.1, 4), rng.normal(1, 0.1, 5)],
            )

    def test_exhaustive_ring_limit(self, rng):
        alphas = [rng.normal(1, 0.1, 15)]
        betas = [rng.normal(1, 0.1, 15)]
        with pytest.raises(ValueError, match="exhaustive"):
            select_multicorner_exhaustive(alphas, betas)

    def test_shared_config(self, rng):
        alphas, betas = random_corners(rng)
        selection = select_case1_multicorner(alphas, betas)
        assert selection.top_config == selection.bottom_config
        assert selection.method == "case1-multicorner"
