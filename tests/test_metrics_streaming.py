"""Streaming metrics must agree with the dense implementations.

The streaming accumulators (`repro.metrics.streaming`) never see more
than one shard at a time, yet their reports must match what the dense
metrics compute from the full matrix: *exactly* for the integer
sufficient statistics (HD sums, flip counts), and to float tolerance for
the derived moments.  These tests pin that equality on the in-house
dataset's bits and on Hypothesis-generated matrices under random shard
partitions and shard-order permutations.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.hamming import pairwise_hamming_distances
from repro.metrics.reliability import bit_flip_report
from repro.metrics.streaming import (
    StreamingReliability,
    StreamingUniformity,
    StreamingUniqueness,
)
from repro.metrics.uniformity import uniformity_report
from repro.metrics.uniqueness import uniqueness_report

bit_matrices = st.integers(2, 10).flatmap(
    lambda rows: st.integers(1, 12).flatmap(
        lambda cols: st.lists(
            st.lists(st.booleans(), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
)


def _random_partition(rows: int, rng: np.random.Generator) -> list[slice]:
    """Cut [0, rows) into 1..rows contiguous shards at random."""
    if rows == 1:
        return [slice(0, 1)]
    cut_count = int(rng.integers(0, rows - 1))
    cuts = sorted(rng.choice(np.arange(1, rows), cut_count, replace=False))
    edges = [0, *map(int, cuts), rows]
    return [slice(a, b) for a, b in zip(edges, edges[1:])]


def _fold_uniqueness(bits, shards):
    acc = StreamingUniqueness(bits.shape[1])
    for piece in shards:
        acc.update(bits[piece])
    return acc


@pytest.fixture(scope="module")
def dataset_bits(small_dataset):
    """Adjacent-pair response bits of every in-house board (nominal)."""
    rows = []
    for board in small_dataset.boards:
        delays = board.delays_at(board.corners[0])
        rows.append(delays[0::2] > delays[1::2])
    return np.asarray(rows)


class TestUniquenessEquality:
    def test_dataset_bits_match_dense(self, dataset_bits):
        dense = uniqueness_report(dataset_bits)
        acc = StreamingUniqueness(dataset_bits.shape[1])
        acc.update(dataset_bits)
        stream = acc.report()
        distances = pairwise_hamming_distances(dataset_bits)
        # integer sufficient statistics are exact
        assert stream.total_distance == int(distances.sum())
        assert stream.total_squared_distance == int(
            np.sum(distances.astype(np.int64) ** 2)
        )
        assert stream.pair_count == dense.pair_count
        assert stream.stream_count == dense.stream_count
        # derived moments to float tolerance
        assert stream.mean_distance == pytest.approx(dense.mean_distance)
        assert stream.std_distance == pytest.approx(dense.std_distance)
        assert stream.uniqueness_percent == pytest.approx(
            dense.uniqueness_percent
        )

    def test_sharded_fold_equals_single_fold(self, dataset_bits, rng):
        whole = _fold_uniqueness(dataset_bits, [slice(None)])
        pieces = _fold_uniqueness(
            dataset_bits, _random_partition(len(dataset_bits), rng)
        )
        assert whole.rows == pieces.rows
        assert np.array_equal(whole.column_ones, pieces.column_ones)
        assert np.array_equal(whole.gram, pieces.gram)

    @given(matrix=bit_matrices, seed=st.integers(0, 2**32 - 1))
    def test_property_dense_equality_under_random_sharding(
        self, matrix, seed
    ):
        bits = np.asarray(matrix, dtype=bool)
        rng = np.random.default_rng(seed)
        acc = _fold_uniqueness(bits, _random_partition(len(bits), rng))
        stream = acc.report()
        distances = pairwise_hamming_distances(bits).astype(np.int64)
        assert stream.total_distance == int(distances.sum())
        assert stream.total_squared_distance == int(
            np.sum(distances * distances)
        )
        dense = uniqueness_report(bits)
        assert stream.mean_distance == pytest.approx(dense.mean_distance)
        assert stream.std_distance == pytest.approx(dense.std_distance)

    @given(matrix=bit_matrices, seed=st.integers(0, 2**32 - 1))
    def test_property_shard_order_invariance(self, matrix, seed):
        bits = np.asarray(matrix, dtype=bool)
        rng = np.random.default_rng(seed)
        shards = _random_partition(len(bits), rng)
        forward = _fold_uniqueness(bits, shards)
        backward = _fold_uniqueness(bits, shards[::-1])
        # integer state: identical, not merely close
        assert forward.rows == backward.rows
        assert np.array_equal(forward.gram, backward.gram)
        assert forward.report() == backward.report()

    def test_merge_equals_update(self, dataset_bits):
        half = len(dataset_bits) // 2
        left = _fold_uniqueness(dataset_bits[:half], [slice(None)])
        right = _fold_uniqueness(dataset_bits[half:], [slice(None)])
        left.merge(right)
        whole = _fold_uniqueness(dataset_bits, [slice(None)])
        assert left.report() == whole.report()

    def test_state_dict_round_trip(self, dataset_bits):
        acc = _fold_uniqueness(dataset_bits, [slice(None)])
        clone = StreamingUniqueness.from_state(acc.state_dict())
        assert clone.report() == acc.report()
        # and the state survives a JSON round trip (workers ship it)
        import json

        rewired = StreamingUniqueness.from_state(
            json.loads(json.dumps(acc.state_dict()))
        )
        assert rewired.report() == acc.report()

    def test_identical_rows_give_zero_distance(self):
        bits = np.tile([True, False, True, True], (5, 1))
        acc = StreamingUniqueness(4)
        acc.update(bits)
        report = acc.report()
        assert report.total_distance == 0
        assert report.std_distance == 0.0

    def test_needs_two_rows(self):
        acc = StreamingUniqueness(4)
        acc.update(np.ones((1, 4), dtype=bool))
        with pytest.raises(ValueError, match="2 devices"):
            acc.report()

    def test_rejects_width_mismatch(self):
        acc = StreamingUniqueness(4)
        with pytest.raises(ValueError, match="bits"):
            acc.update(np.ones((2, 5), dtype=bool))
        with pytest.raises(ValueError, match="merge"):
            acc.merge(StreamingUniqueness(5))


class TestUniformityEquality:
    def test_dataset_bits_match_dense(self, dataset_bits):
        dense = uniformity_report(dataset_bits)
        acc = StreamingUniformity(dataset_bits.shape[1])
        acc.update(dataset_bits)
        stream = acc.report()
        assert stream.mean_uniformity_percent == pytest.approx(
            dense.mean_uniformity_percent
        )
        assert stream.std_uniformity_percent == pytest.approx(
            dense.std_uniformity_percent
        )
        assert stream.mean_aliasing_percent == pytest.approx(
            dense.mean_aliasing_percent
        )
        assert stream.worst_aliasing_percent == pytest.approx(
            dense.worst_aliasing_percent
        )

    @given(matrix=bit_matrices, seed=st.integers(0, 2**32 - 1))
    def test_property_dense_equality_under_random_sharding(
        self, matrix, seed
    ):
        bits = np.asarray(matrix, dtype=bool)
        rng = np.random.default_rng(seed)
        acc = StreamingUniformity(bits.shape[1])
        for piece in _random_partition(len(bits), rng):
            acc.update(bits[piece])
        stream = acc.report()
        dense = uniformity_report(bits)
        assert stream.mean_uniformity_percent == pytest.approx(
            dense.mean_uniformity_percent
        )
        assert stream.std_uniformity_percent == pytest.approx(
            dense.std_uniformity_percent, abs=1e-9
        )
        # Columns can tie in distance from 50% (e.g. 1/6 vs 5/6 ones);
        # float rounding then decides which argmax picks, so compare the
        # distance, not the signed value.
        assert abs(stream.worst_aliasing_percent - 50.0) == pytest.approx(
            abs(dense.worst_aliasing_percent - 50.0), abs=1e-9
        )

    def test_state_dict_round_trip(self, dataset_bits):
        acc = StreamingUniformity(dataset_bits.shape[1])
        acc.update(dataset_bits)
        clone = StreamingUniformity.from_state(acc.state_dict())
        assert clone.report() == acc.report()

    def test_merge_order_invariant(self, dataset_bits):
        a = StreamingUniformity(dataset_bits.shape[1])
        b = StreamingUniformity(dataset_bits.shape[1])
        a.update(dataset_bits[:3])
        b.update(dataset_bits[3:])
        ab = StreamingUniformity.from_state(a.state_dict())
        ab.merge(b)
        ba = StreamingUniformity.from_state(b.state_dict())
        ba.merge(a)
        assert ab.report() == ba.report()


class TestReliabilityEquality:
    def _dense_means(self, reference, observations):
        """Population averages of the dense per-device flip reports."""
        reports = [
            bit_flip_report(reference[i], observations[:, i, :])
            for i in range(reference.shape[0])
        ]
        flip = float(np.mean([r.flip_percent for r in reports]))
        intra = float(np.mean([r.mean_intra_hd_percent for r in reports]))
        return flip, intra

    def test_matches_dense_per_device_reports(self, rng):
        reference = rng.integers(0, 2, (12, 32)).astype(bool)
        flips = rng.random((3, 12, 32)) < 0.05
        observations = reference[None, :, :] ^ flips
        acc = StreamingReliability(32)
        acc.update(reference, observations)
        stream = acc.report()
        flip, intra = self._dense_means(reference, observations)
        assert stream.mean_flip_percent == pytest.approx(flip)
        assert stream.mean_intra_hd_percent == pytest.approx(intra)
        # exact integer totals
        assert stream.total_intra_hd == int(np.count_nonzero(flips))
        assert stream.total_flipped_positions == int(
            np.count_nonzero(np.any(flips, axis=0))
        )

    def test_sharded_fold_matches_dense(self, rng):
        reference = rng.integers(0, 2, (20, 16)).astype(bool)
        observations = reference[None, :, :] ^ (
            rng.random((4, 20, 16)) < 0.1
        )
        acc = StreamingReliability(16)
        for piece in _random_partition(20, rng):
            acc.update(reference[piece], observations[:, piece, :])
        flip, intra = self._dense_means(reference, observations)
        report = acc.report()
        assert report.mean_flip_percent == pytest.approx(flip)
        assert report.mean_intra_hd_percent == pytest.approx(intra)

    def test_single_observation_matrix_promoted(self, rng):
        reference = rng.integers(0, 2, (5, 8)).astype(bool)
        observation = reference ^ (rng.random((5, 8)) < 0.2)
        by_2d = StreamingReliability(8)
        by_2d.update(reference, observation)
        by_3d = StreamingReliability(8)
        by_3d.update(reference, observation[None, :, :])
        assert by_2d.report() == by_3d.report()

    def test_zero_observations_are_perfectly_stable(self):
        reference = np.ones((4, 8), dtype=bool)
        acc = StreamingReliability(8)
        acc.update(reference, np.empty((0, 4, 8), dtype=bool))
        report = acc.report()
        assert report.mean_flip_percent == 0.0
        assert report.mean_intra_hd_percent == 0.0
        assert report.device_count == 4

    def test_state_dict_round_trip(self, rng):
        reference = rng.integers(0, 2, (6, 8)).astype(bool)
        acc = StreamingReliability(8)
        acc.update(reference, ~reference[None, :, :])
        clone = StreamingReliability.from_state(acc.state_dict())
        assert clone.report() == acc.report()
        assert clone.report().mean_flip_percent == 100.0

    def test_rejects_mismatched_shapes(self):
        acc = StreamingReliability(8)
        with pytest.raises(ValueError, match="stack"):
            acc.update(
                np.ones((4, 8), dtype=bool), np.ones((2, 5, 8), dtype=bool)
            )
