"""Unit tests of the measurement-noise models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.variation.noise import (
    GaussianNoise,
    NoiselessMeasurement,
    QuantizedGaussianNoise,
)


class TestNoiseless:
    def test_identity(self, rng):
        values = np.array([1.0, 2.0, 3.0])
        observed = NoiselessMeasurement().observe(values, rng)
        assert np.array_equal(observed, values)

    def test_returns_copy(self, rng):
        values = np.array([1.0])
        observed = NoiselessMeasurement().observe(values, rng)
        observed[0] = 99.0
        assert values[0] == 1.0


class TestGaussianNoise:
    def test_relative_scale(self, rng):
        noise = GaussianNoise(relative_sigma=0.01)
        values = np.full(20000, 100.0)
        observed = noise.observe(values, rng)
        assert abs(np.std(observed) - 1.0) < 0.05
        assert abs(np.mean(observed) - 100.0) < 0.05

    def test_zero_sigma_is_exact(self, rng):
        observed = GaussianNoise(relative_sigma=0.0).observe(
            np.array([5.0, 7.0]), rng
        )
        assert np.array_equal(observed, [5.0, 7.0])

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            GaussianNoise(relative_sigma=-0.1)

    def test_averaging_reduces_variance(self, rng):
        noise = GaussianNoise(relative_sigma=0.01)
        values = np.full(5000, 100.0)
        single = noise.observe_averaged(values, rng, repeats=1)
        averaged = noise.observe_averaged(values, rng, repeats=25)
        assert np.std(averaged) < np.std(single) / 3.0

    def test_averaging_rejects_zero_repeats(self, rng):
        with pytest.raises(ValueError):
            GaussianNoise().observe_averaged(np.ones(2), rng, repeats=0)

    @given(st.integers(1, 9))
    def test_average_shape_preserved(self, repeats):
        rng = np.random.default_rng(0)
        values = np.ones((7,))
        observed = GaussianNoise().observe_averaged(values, rng, repeats)
        assert observed.shape == values.shape


class TestQuantizedNoise:
    def test_quantisation_grid(self, rng):
        noise = QuantizedGaussianNoise(relative_sigma=0.0, resolution=0.5)
        observed = noise.observe(np.array([1.26, 2.6]), rng)
        assert observed.tolist() == [1.5, 2.5]

    def test_zero_resolution_disables_quantisation(self, rng):
        noise = QuantizedGaussianNoise(relative_sigma=0.0, resolution=0.0)
        observed = noise.observe(np.array([1.234]), rng)
        assert observed[0] == pytest.approx(1.234)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            QuantizedGaussianNoise(relative_sigma=-1.0)
        with pytest.raises(ValueError):
            QuantizedGaussianNoise(resolution=-1.0)
