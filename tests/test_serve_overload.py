"""End-to-end overload: 5x sustained overload, zero wrong verdicts,
clean recovery.  Slow by design — runs in the ``serve-chaos`` CI job
(deselected from tier-1 with ``-m "not slow"``).

The server here is deliberately small (two admission slots) so a modest
offered rate constitutes deep overload: the pinned contract is that the
server sheds with typed retriable frames at microsecond cost, keeps
authentication correct for everything it admits, keeps its introspection
verbs answering, and serves a clean closed-loop run immediately after
the storm passes.
"""

from __future__ import annotations

import pytest

from repro.serve import (
    AuthClient,
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
    RequestCoalescer,
    run_load,
    run_overload,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def stack():
    farm = DeviceFarm.from_config(FleetConfig(boards=2))
    service = AuthService(
        farm,
        CRPStore(None),
        coalescer=RequestCoalescer(max_batch=64, max_wait_s=0.002),
        degraded_probe_interval_s=0.05,
    )
    service.enroll_fleet()
    server = AuthServer(service, max_inflight=2).start()
    try:
        yield server, service, farm
    finally:
        server.stop()


class TestSustainedOverload:
    def test_overload_sheds_cleanly_and_recovers(self, stack):
        server, service, farm = stack
        host, port = server.address

        # Calibrate: what does this tiny server sustain closed-loop?
        # (No more clients than admission slots, so nothing is shed.)
        calibration = run_load(
            host, port, clients=2, auths_per_client=8, farm=farm
        )
        assert calibration["failures"] == 0
        sustainable = calibration["throughput_rps"]

        # Storm: offer ~5x the sustainable rate, open loop.
        storm = run_overload(
            host,
            port,
            offered_rps=max(50.0, 5.0 * sustainable),
            duration_s=4.0,
            workers=8,
            farm=farm,
            deadline_ms=250.0,
        )
        # The two hard promises: nothing wrong, nothing untyped.
        assert storm["wrong"] == 0
        assert storm["terminal_by_type"] == {}
        assert storm["transport_errors"] == 0
        # The server actually shed (it was genuinely overloaded) and
        # actually served (goodput survived the storm).
        assert storm["shed"] > 0
        assert storm["goodput"] > 0
        assert set(storm["shed_by_type"]) <= {
            "Overloaded",
            "DeadlineExceeded",
        }
        # Shedding is the fast path: rejections must be far cheaper at
        # the median than admitted work, or shedding itself melts down.
        assert (
            storm["shed_latency_ms"]["p50"]
            < storm["admitted_latency_ms"]["p50"]
        )
        # The open-loop sender held its schedule: shed-fast kept the
        # offered rate honest within 20%.
        assert storm["achieved_rps"] > 0.8 * storm["offered_rps"]

        # The shed counters are visible where operators look.
        with AuthClient(host, port) as client:
            stats = client.stats()
            admission = stats["overload"]["admission"]
            assert admission["shed"] + admission["expired"] >= storm["shed"]
            assert stats["service"]["overload.Overloaded"] >= 1

        # Recovery: a clean closed-loop run right after the storm.
        aftermath = run_load(
            host, port, clients=2, auths_per_client=8, farm=farm
        )
        assert aftermath["failures"] == 0

    def test_introspection_answers_during_overload(self, stack):
        server, service, farm = stack
        host, port = server.address
        import threading

        stop = threading.Event()
        results = {}

        def storm():
            results["storm"] = run_overload(
                host,
                port,
                offered_rps=100.0,
                duration_s=2.0,
                workers=4,
                farm=farm,
            )
            stop.set()

        thread = threading.Thread(target=storm, daemon=True)
        thread.start()
        probes = 0
        with AuthClient(host, port) as client:
            while not stop.is_set():
                health = client.health()
                assert health["ok"] is True
                assert client.ready()["ready"] is True
                probes += 1
        thread.join(timeout=10.0)
        assert probes > 0
        assert results["storm"]["wrong"] == 0


class TestChaosStoreLoss:
    def test_store_death_mid_overload_degrades_not_breaks(self):
        farm = DeviceFarm.from_config(FleetConfig(boards=2))
        service = AuthService(
            farm, CRPStore(None), degraded_probe_interval_s=0.05
        )
        service.enroll_fleet()
        server = AuthServer(service, max_inflight=4).start()
        try:
            host, port = server.address

            def dead_append(record):
                raise OSError(5, "Input/output error")

            service.store._append = dead_append
            service.store.probe_writable = lambda: False  # disk is gone
            with AuthClient(host, port) as client:
                rejected = client.evict(farm.device_ids[0])
                assert rejected["error_type"] == "DegradedReadOnly"
            storm = run_overload(
                host,
                port,
                offered_rps=100.0,
                duration_s=2.0,
                workers=4,
                farm=farm,
            )
            assert storm["wrong"] == 0
            assert storm["goodput"] > 0  # auth survived the dead disk
            with AuthClient(host, port) as client:
                assert client.health()["status"] == "degraded"
                assert client.ready()["ready"] is True
        finally:
            server.stop()


class TestResilientClientAgainstRealOverload:
    def test_retrying_client_lands_requests_through_a_storm(self, stack):
        server, service, farm = stack
        host, port = server.address
        import threading

        done = threading.Event()

        def storm():
            run_overload(
                host,
                port,
                offered_rps=150.0,
                duration_s=2.5,
                workers=6,
                farm=farm,
            )
            done.set()

        thread = threading.Thread(target=storm, daemon=True)
        thread.start()
        corner = next(iter(farm)).corners[0]
        landed = 0
        with AuthClient(
            host,
            port,
            retries=6,
            backoff_s=0.02,
            breaker_threshold=50,
        ) as client:
            while not done.is_set() and landed < 5:
                response = client.attest(farm.device_ids[0], corner)
                if response.get("ok"):
                    assert response["accepted"] is True
                    landed += 1
        thread.join(timeout=10.0)
        # Backoff-and-retry got real work through a saturated server.
        assert landed >= 1
