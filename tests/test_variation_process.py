"""Unit tests of the process-variation model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.variation.process import (
    ProcessParameters,
    ProcessVariationModel,
    SpatialField,
    monomial_exponents,
    polynomial_design_matrix,
)


class TestMonomialExponents:
    def test_degree_one(self):
        assert monomial_exponents(1) == [(1, 0), (0, 1)]

    def test_degree_two_counts(self):
        exponents = monomial_exponents(2)
        assert len(exponents) == 5  # x, y, x^2, xy, y^2
        assert (2, 0) in exponents and (1, 1) in exponents and (0, 2) in exponents

    def test_excludes_constant(self):
        assert (0, 0) not in monomial_exponents(3)

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            monomial_exponents(0)

    @given(st.integers(1, 6))
    def test_count_formula(self, degree):
        # Number of 2-D monomials of total degree 1..d is d(d+3)/2.
        assert len(monomial_exponents(degree)) == degree * (degree + 3) // 2


class TestDesignMatrix:
    def test_values_at_known_points(self):
        coords = np.array([[1.0, 2.0]])
        design = polynomial_design_matrix(coords, 2)
        # order: x, y, x^2, xy, y^2
        assert design.tolist() == [[1.0, 2.0, 1.0, 2.0, 4.0]]

    def test_shape(self):
        coords = np.random.default_rng(0).uniform(-1, 1, (10, 2))
        assert polynomial_design_matrix(coords, 3).shape == (10, 9)


class TestSpatialField:
    def test_coefficient_count_enforced(self):
        with pytest.raises(ValueError, match="coefficients"):
            SpatialField(degree=2, poly_coefficients=np.ones(3))

    def test_pure_linear_field(self):
        field = SpatialField(degree=1, poly_coefficients=np.array([2.0, -1.0]))
        coords = np.array([[0.5, 0.5], [-1.0, 1.0]])
        values = field.evaluate(coords)
        assert values == pytest.approx([2 * 0.5 - 0.5, -2.0 - 1.0])

    def test_ripple_contributes(self):
        base = SpatialField(degree=1, poly_coefficients=np.zeros(2))
        rippled = SpatialField(
            degree=1,
            poly_coefficients=np.zeros(2),
            ripple_amplitude=0.1,
            ripple_frequency=(1.0, 0.0),
            ripple_phase=0.0,
        )
        coords = np.array([[0.25, 0.0]])
        assert base.evaluate(coords)[0] == 0.0
        assert rippled.evaluate(coords)[0] == pytest.approx(0.1 * np.sin(np.pi / 2))

    def test_evaluate_rejects_bad_coords(self):
        field = SpatialField(degree=1, poly_coefficients=np.zeros(2))
        with pytest.raises(ValueError, match="shape"):
            field.evaluate(np.zeros((3, 3)))


class TestProcessParameters:
    def test_rejects_non_positive_nominal(self):
        with pytest.raises(ValueError):
            ProcessParameters(nominal_delay=0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            ProcessParameters(sigma_random=-0.1)

    def test_rejects_degree_below_one(self):
        with pytest.raises(ValueError):
            ProcessParameters(field_degree=0)


class TestProcessVariationModel:
    def setup_method(self):
        self.model = ProcessVariationModel()
        self.rng = np.random.default_rng(3)
        self.coords = np.random.default_rng(1).uniform(-1, 1, (4000, 2))

    def test_board_offset_scale(self):
        offsets = [self.model.sample_board_offset(self.rng) for _ in range(500)]
        sigma = self.model.parameters.sigma_board
        assert abs(np.std(offsets) - sigma) < sigma * 0.25

    def test_field_std_matches_sigma_systematic(self):
        values = []
        for _ in range(20):
            field = self.model.sample_field(self.rng)
            values.append(np.std(field.evaluate(self.coords)))
        target = self.model.parameters.sigma_systematic
        assert abs(np.mean(values) - target) < target * 0.5

    def test_delays_positive_and_near_nominal(self):
        field = self.model.sample_field(self.rng)
        offset = self.model.sample_board_offset(self.rng)
        delays = self.model.sample_delays(self.coords, field, offset, self.rng)
        nominal = self.model.parameters.nominal_delay
        assert np.all(delays > 0.0)
        assert abs(np.mean(delays) / nominal - 1.0) < 0.1

    def test_random_component_independent(self):
        field = self.model.sample_field(self.rng)
        a = self.model.sample_relative_delays(self.coords, field, 0.0, self.rng)
        b = self.model.sample_relative_delays(self.coords, field, 0.0, self.rng)
        residual_a = a - np.mean(a)
        residual_b = b - np.mean(b)
        # Shared systematic field correlates samples, but they must differ.
        assert not np.allclose(residual_a, residual_b)

    def test_zero_random_sigma_gives_pure_field(self):
        model = ProcessVariationModel(
            ProcessParameters(sigma_random=0.0, ripple_sigma=0.0)
        )
        field = model.sample_field(self.rng)
        values = model.sample_relative_delays(self.coords, field, 0.1, self.rng)
        expected = 1.0 + 0.1 + field.evaluate(self.coords)
        assert np.allclose(values, expected)
