"""Tests of the benchmark-artifact comparator and its CLI verb."""

import json

import pytest

from repro.cli import main
from repro.obs import BENCH_SCHEMA, compare_bench, format_bench_compare


def _artifact(tmp_path, name, **overrides):
    """A minimal schema-1 BENCH artifact in the engine-benchmark shape."""
    payload = {
        "schema": BENCH_SCHEMA,
        "board": {
            "problem": {"pairs": 128, "stages": 9},
            "reference_median_seconds": 1.0,
            "vectorized_median_seconds": 0.1,
            "speedup_vs_reference": 10.0,
            "required_speedup": 3.0,
        },
    }
    payload["board"].update(overrides)
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestCompareBench:
    def test_identical_artifacts_are_ok(self, tmp_path):
        old = _artifact(tmp_path, "old.json")
        new = _artifact(tmp_path, "new.json")
        result = compare_bench(old, new)
        assert result["ok"] is True
        assert result["regressions"] == []

    def test_slower_seconds_and_lower_speedup_regress(self, tmp_path):
        old = _artifact(tmp_path, "old.json")
        new = _artifact(
            tmp_path, "new.json",
            vectorized_median_seconds=0.3, speedup_vs_reference=3.3,
        )
        result = compare_bench(old, new)
        assert result["ok"] is False
        paths = {entry["path"] for entry in result["regressions"]}
        assert paths == {
            "board.vectorized_median_seconds",
            "board.speedup_vs_reference",
        }

    def test_faster_is_an_improvement_not_a_regression(self, tmp_path):
        old = _artifact(tmp_path, "old.json")
        new = _artifact(
            tmp_path, "new.json",
            vectorized_median_seconds=0.05, speedup_vs_reference=20.0,
        )
        result = compare_bench(old, new)
        assert result["ok"] is True
        assert len(result["improvements"]) == 2

    def test_metric_filter_restricts_the_gate(self, tmp_path):
        old = _artifact(tmp_path, "old.json")
        new = _artifact(tmp_path, "new.json", vectorized_median_seconds=0.5)
        # the wall-time regression is invisible through the speedup filter
        assert compare_bench(old, new, metric="speedup")["ok"] is True
        assert compare_bench(old, new, metric="seconds")["ok"] is False

    def test_problem_size_mismatch_is_incomparable(self, tmp_path):
        old = _artifact(tmp_path, "old.json")
        new = _artifact(tmp_path, "new.json", problem={"pairs": 256, "stages": 9})
        result = compare_bench(old, new)
        assert result["ok"] is False
        assert "board.problem.pairs" in result["incomparable"]

    def test_required_speedup_change_is_incomparable(self, tmp_path):
        old = _artifact(tmp_path, "old.json")
        new = _artifact(tmp_path, "new.json", required_speedup=5.0)
        result = compare_bench(old, new)
        assert result["ok"] is False
        assert "board.required_speedup" in result["incomparable"]

    def test_throughput_and_memory_families(self, tmp_path):
        # Throughput (devices_per_second) regresses when it drops;
        # memory (peak_rss_mb) regresses when it grows.
        old = _artifact(
            tmp_path, "old.json",
            devices_per_second=50_000.0, peak_rss_mb=200.0,
        )
        slower = _artifact(
            tmp_path, "slower.json",
            devices_per_second=20_000.0, peak_rss_mb=200.0,
        )
        fatter = _artifact(
            tmp_path, "fatter.json",
            devices_per_second=50_000.0, peak_rss_mb=400.0,
        )
        result = compare_bench(old, slower)
        paths = {entry["path"] for entry in result["regressions"]}
        assert "board.devices_per_second" in paths
        result = compare_bench(old, fatter)
        paths = {entry["path"] for entry in result["regressions"]}
        assert paths == {"board.peak_rss_mb"}
        # Family filters see only their own quantities.
        assert compare_bench(old, slower, metric="memory")["ok"] is True
        assert compare_bench(old, fatter, metric="memory")["ok"] is False
        assert compare_bench(old, fatter, metric="throughput")["ok"] is True
        assert compare_bench(old, slower, metric="throughput")["ok"] is False

    def test_unknown_metric_family_rejected(self, tmp_path):
        old = _artifact(tmp_path, "old.json")
        with pytest.raises(ValueError, match="metric"):
            compare_bench(old, old, metric="wall")

    def test_unversioned_artifact_rejected(self, tmp_path):
        old = _artifact(tmp_path, "old.json")
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({"board": {"speedup_vs_reference": 1.0}}))
        with pytest.raises(ValueError, match="schema"):
            compare_bench(old, legacy)

    def test_format_ends_with_verdict(self, tmp_path):
        old = _artifact(tmp_path, "old.json")
        ok = format_bench_compare(compare_bench(old, old))
        assert ok.splitlines()[-1] == "OK"
        bad = _artifact(tmp_path, "bad.json", speedup_vs_reference=1.0)
        fail = format_bench_compare(compare_bench(old, bad))
        assert fail.splitlines()[-1] == "FAIL"


class TestCliVerb:
    def test_ok_compare_exits_zero(self, capsys, tmp_path):
        old = _artifact(tmp_path, "old.json")
        new = _artifact(tmp_path, "new.json")
        assert main(["bench", "compare", str(old), str(new)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        old = _artifact(tmp_path, "old.json")
        new = _artifact(tmp_path, "new.json", speedup_vs_reference=1.0)
        assert main(["bench", "compare", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out and "FAIL" in out

    def test_threshold_flag_loosens_the_gate(self, capsys, tmp_path):
        old = _artifact(tmp_path, "old.json")
        new = _artifact(tmp_path, "new.json", speedup_vs_reference=8.5)
        assert main(
            ["bench", "compare", str(old), str(new), "--threshold", "0.5"]
        ) == 0
        capsys.readouterr()

    def test_round_trips_saved_engine_artifact_shape(self, capsys, tmp_path):
        """The benchmarks' save_bench_json artifacts feed straight in."""
        # mirror benchmarks/conftest.py::save_bench_json output exactly
        payload = {
            "schema": BENCH_SCHEMA,
            "board": {
                "problem": {"pairs": 128, "stages": 9, "votes": 5},
                "reference_median_seconds": 2.0,
                "vectorized_median_seconds": 0.2,
                "speedup_vs_reference": 10.0,
                "required_speedup": 3.0,
            },
            "chip": {
                "problem": {"rings": 256, "stages": 9},
                "reference_median_seconds": 1.0,
                "vectorized_median_seconds": 0.25,
                "speedup_vs_reference": 4.0,
                "required_speedup": 2.0,
            },
        }
        path = tmp_path / "BENCH_enroll.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        assert main(["bench", "compare", str(path), str(path)]) == 0
        assert capsys.readouterr().out.splitlines()[-1] == "OK"
