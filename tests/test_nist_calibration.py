"""Monte-Carlo calibration checks of the NIST tests.

A test statistic is only useful if its p-values are honest: on truly
random input, the rejection rate at level alpha must be close to alpha.
These checks bound the false-positive rate of every test that runs on
moderate-length sequences (the ones the PUF experiments rely on).
"""

import numpy as np
import pytest

from repro.nist.basic_tests import (
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test,
    runs_test,
)
from repro.nist.entropy_tests import approximate_entropy_test, serial_test
from repro.nist.spectral import dft_test

TRIALS = 400
LENGTH = 2048


@pytest.fixture(scope="module")
def random_sequences():
    rng = np.random.default_rng(2718)
    return rng.integers(0, 2, size=(TRIALS, LENGTH)).astype(bool)


def rejection_rate(p_values, alpha=0.01):
    return float(np.mean(np.asarray(p_values) < alpha))


class TestFalsePositiveRates:
    """Each test's rejection rate on random data stays near alpha = 1%."""

    def test_frequency(self, random_sequences):
        rate = rejection_rate(
            [frequency_test(s).p_value for s in random_sequences]
        )
        assert rate < 0.03

    def test_block_frequency(self, random_sequences):
        rate = rejection_rate(
            [
                block_frequency_test(s, block_size=128).p_value
                for s in random_sequences
            ]
        )
        assert rate < 0.03

    def test_runs(self, random_sequences):
        rate = rejection_rate([runs_test(s).p_value for s in random_sequences])
        assert rate < 0.03

    def test_longest_run(self, random_sequences):
        rate = rejection_rate(
            [longest_run_test(s).p_value for s in random_sequences]
        )
        assert rate < 0.04  # table probabilities are rounded; slight bias

    def test_cumulative_sums(self, random_sequences):
        rate = rejection_rate(
            [cumulative_sums_test(s)[0].p_value for s in random_sequences]
        )
        assert rate < 0.03

    def test_dft(self, random_sequences):
        # The DFT test's d statistic is known to be slightly over-dispersed
        # even in the revised specification; bound it loosely.
        rate = rejection_rate([dft_test(s).p_value for s in random_sequences])
        assert rate < 0.06

    def test_serial(self, random_sequences):
        rate = rejection_rate(
            [serial_test(s, m=3)[0].p_value for s in random_sequences]
        )
        assert rate < 0.03

    def test_approximate_entropy(self, random_sequences):
        rate = rejection_rate(
            [
                approximate_entropy_test(s, m=2).p_value
                for s in random_sequences
            ]
        )
        assert rate < 0.03


class TestPValueUniformity:
    """On random data the continuous tests' p-values look uniform."""

    @pytest.mark.parametrize(
        "test_fn",
        [
            lambda s: runs_test(s).p_value,
            lambda s: approximate_entropy_test(s, m=2).p_value,
            lambda s: serial_test(s, m=3)[0].p_value,
        ],
        ids=["runs", "apen", "serial"],
    )
    def test_mean_and_spread(self, random_sequences, test_fn):
        p_values = np.array([test_fn(s) for s in random_sequences])
        # Uniform(0,1): mean 0.5 +/- ~0.014 at 400 samples, std ~0.289.
        assert abs(np.mean(p_values) - 0.5) < 0.06
        assert abs(np.std(p_values) - 0.289) < 0.06
