"""Tests of the dataset abstractions and generators."""

import numpy as np
import pytest

from repro.datasets.base import BoardRecord, RODataset
from repro.datasets.inhouse import InHouseConfig, generate_inhouse_boards
from repro.datasets.vtlike import (
    VTLikeConfig,
    generate_vt_like,
    load_vt_directory,
)
from repro.variation.corners import full_grid
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint


class TestBoardRecord:
    def make_board(self, corners=None):
        corners = corners or [NOMINAL_OPERATING_POINT]
        rng = np.random.default_rng(0)
        coords = rng.uniform(-1, 1, (16, 2))
        delays = {op: rng.normal(5e-10, 1e-11, 16) for op in corners}
        return BoardRecord(name="b0", coords=coords, delays=delays)

    def test_ro_count(self):
        assert self.make_board().ro_count == 16

    def test_corners_sorted(self):
        corners = [OperatingPoint(1.44, 25.0), OperatingPoint(0.98, 25.0)]
        board = self.make_board(corners)
        assert board.corners == sorted(corners)

    def test_is_swept(self):
        assert not self.make_board().is_swept
        assert self.make_board(
            [NOMINAL_OPERATING_POINT, OperatingPoint(0.98, 25.0)]
        ).is_swept

    def test_missing_corner_raises_with_context(self):
        board = self.make_board()
        with pytest.raises(KeyError, match="no measurement"):
            board.delays_at(OperatingPoint(0.98, 65.0))

    def test_frequencies_inverse_of_delays(self):
        board = self.make_board()
        delays = board.delays_at(NOMINAL_OPERATING_POINT)
        freqs = board.frequencies_at(NOMINAL_OPERATING_POINT)
        assert np.allclose(freqs * 2 * delays, 1.0)

    def test_shape_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="shape"):
            BoardRecord(
                name="bad",
                coords=rng.uniform(-1, 1, (4, 2)),
                delays={NOMINAL_OPERATING_POINT: np.ones(5)},
            )

    def test_delay_provider_closure(self):
        board = self.make_board()
        provider = board.delay_provider()
        assert np.array_equal(
            provider(NOMINAL_OPERATING_POINT),
            board.delays_at(NOMINAL_OPERATING_POINT),
        )


class TestRODataset:
    def test_small_dataset_structure(self, small_dataset):
        assert small_dataset.board_count == 10
        assert len(small_dataset.nominal_boards) == 8
        assert len(small_dataset.swept_boards) == 2
        assert small_dataset.ro_count == 128

    def test_swept_boards_have_full_grid(self, small_dataset):
        board = small_dataset.swept_boards[0]
        assert set(board.corners) == set(full_grid())

    def test_board_lookup(self, small_dataset):
        name = small_dataset.boards[0].name
        assert small_dataset.board(name).name == name
        with pytest.raises(KeyError):
            small_dataset.board("nonexistent")

    def test_nominal_delay_matrix(self, small_dataset):
        matrix = small_dataset.nominal_delay_matrix()
        assert matrix.shape == (10, 128)
        assert np.all(matrix > 0)

    def test_requires_nominal_everywhere(self):
        rng = np.random.default_rng(0)
        coords = rng.uniform(-1, 1, (4, 2))
        board = BoardRecord(
            name="x",
            coords=coords,
            delays={OperatingPoint(0.98, 25.0): np.ones(4)},
        )
        with pytest.raises(ValueError, match="nominal"):
            RODataset(name="d", boards=[board])

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            RODataset(name="d", boards=[])


class TestVTLikeGeneration:
    def test_default_shape_matches_paper(self):
        config = VTLikeConfig()
        assert config.nominal_boards == 194
        assert config.swept_boards == 5
        assert config.ro_count == 512

    def test_seed_reproducibility(self):
        config = VTLikeConfig(
            nominal_boards=2, swept_boards=1, ro_count=32,
            grid_columns=8, grid_rows=4, seed=5,
        )
        a = generate_vt_like(config)
        b = generate_vt_like(config)
        assert np.array_equal(
            a.boards[0].delays_at(NOMINAL_OPERATING_POINT),
            b.boards[0].delays_at(NOMINAL_OPERATING_POINT),
        )

    def test_boards_are_distinct(self, small_dataset):
        a = small_dataset.boards[0].delays_at(NOMINAL_OPERATING_POINT)
        b = small_dataset.boards[1].delays_at(NOMINAL_OPERATING_POINT)
        assert np.max(np.abs(a / b - 1.0)) > 1e-3

    def test_low_voltage_slows_board(self, small_dataset):
        board = small_dataset.swept_boards[0]
        nominal = board.delays_at(NOMINAL_OPERATING_POINT)
        slow = board.delays_at(OperatingPoint(0.98, 25.0))
        assert np.mean(slow / nominal) > 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            VTLikeConfig(nominal_boards=0, swept_boards=0)
        with pytest.raises(ValueError):
            VTLikeConfig(ro_count=0)
        with pytest.raises(ValueError):
            VTLikeConfig(ro_count=512, grid_columns=2, grid_rows=2)

    def test_metadata_provenance(self, small_dataset):
        assert "synthetic" in small_dataset.metadata["source"]


class TestInHouseGeneration:
    def test_board_shape(self):
        boards = generate_inhouse_boards(
            InHouseConfig(board_count=2, unit_count=64, seed=1)
        )
        assert len(boards) == 2
        assert boards[0].unit_count == 64
        assert boards[0].name.startswith("virtex5-")

    def test_validation(self):
        with pytest.raises(ValueError):
            InHouseConfig(board_count=0)
        with pytest.raises(ValueError):
            InHouseConfig(unit_count=0)


class TestVTDirectoryLoader:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        nominal_mhz = rng.uniform(140.0, 160.0, 32)
        swept_mhz = rng.uniform(120.0, 140.0, 32)
        np.savetxt(tmp_path / "boardA.txt", nominal_mhz)
        np.savetxt(tmp_path / "boardA_V0.98_T25.txt", swept_mhz)
        np.savetxt(tmp_path / "boardB.txt", nominal_mhz * 1.01)

        dataset = load_vt_directory(tmp_path)
        assert dataset.board_count == 2
        board = dataset.board("boardA")
        assert board.is_swept
        delays = board.delays_at(NOMINAL_OPERATING_POINT)
        assert np.allclose(delays, 1.0 / (2.0 * nominal_mhz * 1e6))
        corner = OperatingPoint(0.98, 25.0)
        assert np.allclose(
            board.delays_at(corner), 1.0 / (2.0 * swept_mhz * 1e6)
        )

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_vt_directory(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no .txt"):
            load_vt_directory(tmp_path)

    def test_rejects_non_positive_frequencies(self, tmp_path):
        np.savetxt(tmp_path / "bad.txt", np.array([100.0, -5.0]))
        with pytest.raises(ValueError, match="positive"):
            load_vt_directory(tmp_path)

    def test_bad_corner_filename(self, tmp_path):
        np.savetxt(tmp_path / "x_Vabc_T25.txt", np.ones(4) * 100)
        with pytest.raises(ValueError, match="corner"):
            load_vt_directory(tmp_path)
