"""Equivalence and unit tests of the vectorized batch response engine.

The contract under test (see ``repro/core/batch.py``):

* the per-call ``BoardROPUF.response`` / ``response_voted`` wrappers are
  byte-identical to the historical per-pair loop (preserved verbatim as
  ``response_loop_reference``) across operating points and noise modes;
* the sweep APIs follow the documented ``sweep-v1`` draw order — one noise
  tensor per sweep shape, top then bottom;
* compiled selection masks are cached per allocation and validated.
"""

import numpy as np
import pytest

from repro.core.batch import (
    SWEEP_DRAW_ORDER,
    BatchEvaluator,
    compile_enrollment,
    response_loop_reference,
)
from repro.core.pairing import RingAllocation, allocate_rings
from repro.core.puf import BoardROPUF
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from repro.variation.noise import GaussianNoise, NoiselessMeasurement

#: Four corners spanning the paper's voltage sweep plus the nominal point.
SWEEP_OPS = [
    OperatingPoint(0.90, 25.0),
    OperatingPoint(1.08, 25.0),
    NOMINAL_OPERATING_POINT,
    OperatingPoint(1.32, 25.0),
]

NOISE_MODES = {
    "noiseless": lambda: NoiselessMeasurement(),
    "gaussian": lambda: GaussianNoise(relative_sigma=0.01),
}


def make_puf(
    noise=None,
    seed=7,
    n_units=120,
    stage_count=5,
    method="case1",
    require_odd=False,
    layout="consecutive",
):
    data_rng = np.random.default_rng(42)
    base = data_rng.normal(1.0, 0.02, n_units)
    sensitivity = data_rng.normal(0.05, 0.01, n_units)

    def provider(op):
        return base * (1.0 + sensitivity * (1.20 - op.voltage))

    allocation = RingAllocation(
        stage_count=stage_count,
        ring_count=n_units // stage_count // 2 * 2,
        layout=layout,
    )
    return BoardROPUF(
        delay_provider=provider,
        allocation=allocation,
        method=method,
        require_odd=require_odd,
        response_noise=noise if noise is not None else NoiselessMeasurement(),
        rng=np.random.default_rng(seed),
    )


class TestLoopEquivalence:
    @pytest.mark.parametrize("noise_mode", sorted(NOISE_MODES))
    @pytest.mark.parametrize("method", ["case1", "case2", "traditional"])
    def test_response_matches_loop_across_ops(self, noise_mode, method):
        """Wrapper output is byte-identical to the loop at >= 3 corners."""
        make_noise = NOISE_MODES[noise_mode]
        vectorized = make_puf(noise=make_noise(), method=method)
        looped = make_puf(noise=make_noise(), method=method)
        enrollment = vectorized.enroll()
        for op in SWEEP_OPS:
            new_bits = vectorized.response(op, enrollment)
            old_bits = response_loop_reference(looped, enrollment, op)
            assert new_bits.dtype == bool
            assert np.array_equal(new_bits, old_bits), (noise_mode, method, op)

    @pytest.mark.parametrize("noise_mode", sorted(NOISE_MODES))
    def test_response_voted_matches_legacy_loop(self, noise_mode):
        """Voting draws per-vote interleaved noise, like the legacy loop."""
        make_noise = NOISE_MODES[noise_mode]
        vectorized = make_puf(noise=make_noise())
        looped = make_puf(noise=make_noise())
        enrollment = vectorized.enroll()
        op = SWEEP_OPS[0]
        votes = 5
        voted = vectorized.response_voted(op, enrollment, votes=votes)
        totals = np.zeros(enrollment.bit_count, dtype=int)
        for _ in range(votes):
            totals += response_loop_reference(looped, enrollment, op).astype(int)
        assert np.array_equal(voted, totals * 2 > votes)

    def test_interleaved_layout_equivalence(self):
        vectorized = make_puf(layout="interleaved")
        looped = make_puf(layout="interleaved")
        enrollment = vectorized.enroll()
        for op in SWEEP_OPS:
            assert np.array_equal(
                vectorized.response(op, enrollment),
                response_loop_reference(looped, enrollment, op),
            )

    def test_response_at_enrollment_corner_is_reference(self):
        puf = make_puf()
        enrollment = puf.enroll()
        assert np.array_equal(
            puf.response(NOMINAL_OPERATING_POINT, enrollment), enrollment.bits
        )


class TestSweep:
    def test_noiseless_sweep_equals_stacked_single_ops(self):
        puf = make_puf()
        enrollment = puf.enroll()
        sweep = puf.response_sweep(SWEEP_OPS, enrollment)
        assert sweep.shape == (len(SWEEP_OPS), puf.bit_count)
        single = np.stack([puf.response(op, enrollment) for op in SWEEP_OPS])
        assert np.array_equal(sweep, single)

    def test_sweep_draw_order_is_versioned(self):
        assert SWEEP_DRAW_ORDER == "sweep-v1"

    def test_noisy_sweep_follows_documented_draw_order(self):
        """sweep-v1: one (op, pair) top tensor is drawn, then one bottom."""
        sigma = 0.01
        puf = make_puf(noise=GaussianNoise(relative_sigma=sigma), seed=11)
        enrollment = puf.enroll()
        evaluator = puf.batch(enrollment)
        top, bottom = evaluator.sweep_delays(SWEEP_OPS)

        replay = np.random.default_rng(11)
        expected_top = top * (1.0 + replay.normal(0.0, sigma, size=top.shape))
        expected_bottom = bottom * (1.0 + replay.normal(0.0, sigma, size=bottom.shape))
        expected = expected_top > expected_bottom

        fresh = make_puf(noise=GaussianNoise(relative_sigma=sigma), seed=11)
        assert np.array_equal(fresh.response_sweep(SWEEP_OPS, enrollment), expected)

    def test_voted_sweep_noiseless_equals_sweep(self):
        puf = make_puf()
        enrollment = puf.enroll()
        assert np.array_equal(
            puf.response_voted_sweep(SWEEP_OPS, enrollment, votes=3),
            puf.response_sweep(SWEEP_OPS, enrollment),
        )

    def test_voted_sweep_draws_one_tensor_per_side(self):
        sigma = 0.02
        votes = 3
        puf = make_puf(noise=GaussianNoise(relative_sigma=sigma), seed=23)
        enrollment = puf.enroll()
        evaluator = puf.batch(enrollment)
        top, bottom = evaluator.sweep_delays(SWEEP_OPS)
        shape = (votes,) + top.shape

        replay = np.random.default_rng(23)
        observed_top = top * (1.0 + replay.normal(0.0, sigma, size=shape))
        observed_bottom = bottom * (1.0 + replay.normal(0.0, sigma, size=shape))
        totals = (observed_top > observed_bottom).sum(axis=0)
        expected = totals * 2 > votes

        fresh = make_puf(noise=GaussianNoise(relative_sigma=sigma), seed=23)
        assert np.array_equal(
            fresh.response_voted_sweep(SWEEP_OPS, enrollment, votes=votes),
            expected,
        )

    def test_empty_sweep_rejected(self):
        puf = make_puf()
        enrollment = puf.enroll()
        with pytest.raises(ValueError, match="no operating points"):
            puf.response_sweep([], enrollment)

    @pytest.mark.parametrize("votes", [0, 2, -1])
    def test_even_votes_rejected(self, votes):
        puf = make_puf()
        enrollment = puf.enroll()
        with pytest.raises(ValueError, match="odd"):
            puf.response_voted(SWEEP_OPS[0], enrollment, votes=votes)
        with pytest.raises(ValueError, match="odd"):
            puf.response_voted_sweep(SWEEP_OPS, enrollment, votes=votes)


class TestCompilation:
    def test_masks_mirror_selections(self):
        puf = make_puf(method="case2")
        enrollment = puf.enroll()
        compiled = enrollment.compiled(puf.allocation)
        assert compiled.pair_count == puf.bit_count
        assert compiled.top_masks.shape == (puf.bit_count, puf.allocation.stage_count)
        for pair, selection in enumerate(enrollment.selections):
            assert np.array_equal(
                compiled.top_masks[pair].astype(bool),
                selection.top_config.as_array(),
            )
            assert np.array_equal(
                compiled.bottom_masks[pair].astype(bool),
                selection.bottom_config.as_array(),
            )
        assert np.array_equal(compiled.reference_bits, enrollment.bits)

    def test_compiled_masks_cached_per_allocation(self):
        puf = make_puf()
        enrollment = puf.enroll()
        first = enrollment.compiled(puf.allocation)
        assert enrollment.compiled(puf.allocation) is first
        evaluator = puf.batch(enrollment)
        assert evaluator.compiled is first

    def test_mismatched_allocation_rejected(self):
        puf = make_puf(stage_count=5)
        enrollment = puf.enroll()
        wrong_pairs = allocate_rings(60, 5)
        with pytest.raises(ValueError, match="pairs"):
            compile_enrollment(enrollment, wrong_pairs)
        wrong_stages = RingAllocation(
            stage_count=3, ring_count=puf.allocation.ring_count
        )
        with pytest.raises(ValueError, match="stages"):
            compile_enrollment(enrollment, wrong_stages)

    def test_evaluator_shares_puf_rng(self):
        """Mixing per-call and batch APIs advances one generator."""
        sigma = 0.01
        puf_a = make_puf(noise=GaussianNoise(relative_sigma=sigma), seed=3)
        puf_b = make_puf(noise=GaussianNoise(relative_sigma=sigma), seed=3)
        enrollment = puf_a.enroll()
        first_a = puf_a.response(SWEEP_OPS[0], enrollment)
        second_a = puf_a.batch(enrollment).response(SWEEP_OPS[1])
        evaluator_b = BatchEvaluator.from_puf(puf_b, enrollment)
        first_b = evaluator_b.response(SWEEP_OPS[0])
        second_b = puf_b.response(SWEEP_OPS[1], enrollment)
        assert np.array_equal(first_a, first_b)
        assert np.array_equal(second_a, second_b)
