"""Frame protocol tests: unit-level parsing plus socket-level survival.

The unit half pins the exact exception taxonomy of ``repro.serve.protocol``
on in-memory streams.  The socket half runs a real server and throws every
flavour of hostile input at it — garbage length prefixes, bad JSON,
mid-frame disconnects — asserting both the per-connection contract
(error frame vs drop) and, after each abuse, that the server still answers
a well-formed client.
"""

from __future__ import annotations

import io
import socket
import struct

import numpy as np
import pytest

from repro.serve import (
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
)
from repro.serve.client import AuthClient, ServeClientError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameMalformed,
    FrameTooLarge,
    FrameTruncated,
    decode_bits,
    encode_bits,
    read_frame,
    write_frame,
)


def frame_bytes(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload


class TestFrameCodec:
    def test_round_trip(self):
        buffer = io.BytesIO()
        message = {"op": "ping", "n": 3, "bits": "0101"}
        write_frame(buffer, message)
        buffer.seek(0)
        assert read_frame(buffer) == message

    def test_many_frames_on_one_stream(self):
        buffer = io.BytesIO()
        for index in range(5):
            write_frame(buffer, {"index": index})
        buffer.seek(0)
        assert [read_frame(buffer)["index"] for _ in range(5)] == list(range(5))
        assert read_frame(buffer) is None  # clean EOF between frames

    def test_clean_eof_returns_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_truncated_header(self):
        with pytest.raises(FrameTruncated):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_payload(self):
        whole = frame_bytes(b'{"op":"ping"}')
        with pytest.raises(FrameTruncated):
            read_frame(io.BytesIO(whole[:-4]))

    def test_zero_length_frame_is_malformed(self):
        with pytest.raises(FrameMalformed):
            read_frame(io.BytesIO(struct.pack(">I", 0)))

    def test_invalid_json_is_malformed(self):
        with pytest.raises(FrameMalformed):
            read_frame(io.BytesIO(frame_bytes(b"not json at all")))

    def test_non_object_json_is_malformed(self):
        with pytest.raises(FrameMalformed):
            read_frame(io.BytesIO(frame_bytes(b"[1,2,3]")))

    def test_invalid_utf8_is_malformed(self):
        with pytest.raises(FrameMalformed):
            read_frame(io.BytesIO(frame_bytes(b"\xff\xfe\xfd")))

    def test_oversized_declared_length(self):
        stream = io.BytesIO(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameTooLarge):
            read_frame(stream)

    def test_oversized_leaves_payload_unread(self):
        # The reader must not try to consume a hostile length's payload.
        stream = io.BytesIO(struct.pack(">I", 1 << 30))
        with pytest.raises(FrameTooLarge):
            read_frame(stream)
        assert stream.tell() == struct.calcsize(">I")

    def test_write_rejects_oversized_payload(self):
        buffer = io.BytesIO()
        with pytest.raises(FrameTooLarge):
            write_frame(buffer, {"blob": "x" * 100}, max_bytes=32)
        assert buffer.getvalue() == b""  # nothing partial was written

    def test_custom_max_bytes_on_read(self):
        payload = b'{"op":"ping","pad":"' + b"x" * 100 + b'"}'
        with pytest.raises(FrameTooLarge):
            read_frame(io.BytesIO(frame_bytes(payload)), max_bytes=32)


class TestBitCodec:
    def test_round_trip(self):
        bits = np.array([True, False, True, True, False])
        assert np.array_equal(decode_bits(encode_bits(bits)), bits)

    def test_encode_accepts_ints(self):
        assert encode_bits([1, 0, 1]) == "101"

    def test_decode_rejects_bad_characters(self):
        with pytest.raises(ValueError):
            decode_bits("01012")

    def test_decode_rejects_empty(self):
        with pytest.raises(ValueError):
            decode_bits("")

    def test_decode_rejects_non_string(self):
        with pytest.raises(ValueError):
            decode_bits([0, 1, 0])


# ----------------------------------------------------------------------
# Socket-level robustness: nothing a client sends kills the server
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def stack():
    """A live server over a tiny in-memory fleet."""
    farm = DeviceFarm.from_config(FleetConfig(boards=2))
    service = AuthService(farm, CRPStore(None))
    service.enroll_fleet()
    server = AuthServer(service).start()
    yield server, service, farm
    server.stop()


def raw_connection(server) -> socket.socket:
    host, port = server.address
    return socket.create_connection((host, port), timeout=5.0)


def exchange(sock: socket.socket, raw: bytes) -> dict | None:
    """Send raw bytes, read back one frame (None when the server closed)."""
    sock.sendall(raw)
    rfile = sock.makefile("rb")
    try:
        return read_frame(rfile)
    finally:
        rfile.detach()


def assert_server_alive(server) -> None:
    with AuthClient(*server.address) as client:
        assert client.ping()["ok"] is True


class TestServerRobustness:
    def test_hostile_length_prefix_gets_error_then_close(self, stack):
        server, _, _ = stack
        with raw_connection(server) as sock:
            response = exchange(sock, struct.pack(">I", 1 << 31))
            assert response["ok"] is False
            assert response["error_type"] == "FrameTooLarge"
            # The stream is desynchronised, so the server must hang up.
            rfile = sock.makefile("rb")
            assert rfile.read(1) == b""
        assert_server_alive(server)

    def test_bad_json_gets_error_and_connection_survives(self, stack):
        server, _, _ = stack
        with raw_connection(server) as sock:
            response = exchange(sock, frame_bytes(b"}{ not json"))
            assert response["ok"] is False
            assert response["error_type"] == "FrameMalformed"
            # Same connection keeps working after the error frame.
            follow_up = exchange(sock, frame_bytes(b'{"op":"ping"}'))
            assert follow_up["ok"] is True
        assert_server_alive(server)

    def test_non_object_payload_is_malformed_not_fatal(self, stack):
        server, _, _ = stack
        with raw_connection(server) as sock:
            response = exchange(sock, frame_bytes(b"[1,2]"))
            assert response["error_type"] == "FrameMalformed"
            assert exchange(sock, frame_bytes(b'{"op":"ping"}'))["ok"]

    def test_mid_frame_disconnect_is_survived(self, stack):
        server, _, _ = stack
        with raw_connection(server) as sock:
            # Declare 100 bytes, send 10, vanish.
            sock.sendall(struct.pack(">I", 100) + b"0123456789")
        assert_server_alive(server)

    def test_partial_header_disconnect_is_survived(self, stack):
        server, _, _ = stack
        with raw_connection(server) as sock:
            sock.sendall(b"\x00")
        assert_server_alive(server)

    def test_random_garbage_never_kills_the_listener(self, stack):
        server, _, _ = stack
        rng = np.random.default_rng(7)
        for _ in range(10):
            blob = rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()
            with raw_connection(server) as sock:
                try:
                    exchange(sock, blob)
                except (OSError, FrameTruncated):
                    pass  # the server may hang up mid-read; that's fine
            assert_server_alive(server)

    def test_unknown_verb_gets_clean_error(self, stack):
        server, _, _ = stack
        with AuthClient(*server.address) as client:
            response = client.call("frobnicate")
            assert response["ok"] is False
            assert response["error_type"] == "UnknownOp"
            assert "frobnicate" in response["error"]
            assert client.ping()["ok"]  # connection still usable

    def test_missing_fields_get_bad_request(self, stack):
        server, _, farm = stack
        device = farm.device_ids[0]
        with AuthClient(*server.address) as client:
            assert client.call("auth")["error_type"] == "BadRequest"
            assert (
                client.call("auth", device=device)["error_type"]
                == "BadRequest"
            )
            assert (
                client.call("attest", device=device)["error_type"]
                == "BadRequest"
            )

    def test_bad_answer_bits_get_bad_request(self, stack):
        server, _, farm = stack
        device = farm.device_ids[0]
        with AuthClient(*server.address) as client:
            issued = client.challenge(device)
            verdict = client.call(
                "auth",
                device=device,
                challenge_id=issued["challenge_id"],
                answer="01xx10",
            )
            assert verdict["ok"] is False
            assert verdict["error_type"] == "BadRequest"

    def test_protocol_errors_are_counted(self, stack):
        server, service, _ = stack
        before = service._counts.get("protocol_errors.FrameMalformed", 0)
        with raw_connection(server) as sock:
            exchange(sock, frame_bytes(b"garbage!"))
        assert (
            service._counts.get("protocol_errors.FrameMalformed", 0)
            == before + 1
        )


class TestSmallFrameServer:
    def test_server_with_tiny_frame_ceiling(self):
        farm = DeviceFarm.from_config(FleetConfig(boards=2))
        service = AuthService(farm, CRPStore(None))
        service.enroll_fleet()
        with AuthServer(service, max_frame_bytes=128).start() as server:
            with AuthClient(*server.address) as client:
                assert client.ping()["ok"]
            with raw_connection(server) as sock:
                big = b'{"op":"ping","pad":"' + b"x" * 256 + b'"}'
                response = exchange(sock, frame_bytes(big))
                assert response["error_type"] == "FrameTooLarge"
            assert_server_alive(server)

    def test_start_twice_rejected(self):
        farm = DeviceFarm.from_config(FleetConfig(boards=2))
        service = AuthService(farm, CRPStore(None))
        server = AuthServer(service).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_client_reports_server_hangup(self):
        # A client whose frame ceiling exceeds the server's: its oversized
        # frame earns an error reply and a server-side close, after which
        # the next call must surface as a transport error, not a hang.
        farm = DeviceFarm.from_config(FleetConfig(boards=2))
        service = AuthService(farm, CRPStore(None))
        service.enroll_fleet()
        with AuthServer(service, max_frame_bytes=128).start() as server:
            host, port = server.address
            with AuthClient(host, port, max_frame_bytes=4096) as client:
                response = client.call("ping", pad="x" * 512)
                assert response["error_type"] == "FrameTooLarge"
                with pytest.raises(ServeClientError):
                    client.ping()
