"""Tests of the out-of-core fleet generator (`repro.datasets.fleet`).

The load-bearing property is shard isolation: shard ``i`` is a pure
function of ``(spec.seed, i)`` and the spec's shape, so any worker can
regenerate any shard in any order and get bit-identical delays.  The
draw order behind that is versioned (`FLEET_DRAW_ORDER`); these tests
pin it with a golden digest so an accidental reorder fails loudly
instead of silently changing every generated fleet.
"""

import hashlib

import numpy as np
import pytest

from repro.datasets.fleet import (
    DEFAULT_FLEET_CORNERS,
    FLEET_DRAW_ORDER,
    FleetSpec,
    FleetShard,
    generate_shard,
    iter_shards,
)
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint

SMALL = FleetSpec(devices=100, ro_count=16, shard_devices=32, seed=7)


class TestFleetSpec:
    def test_defaults_describe_the_roadmap_fleet(self):
        spec = FleetSpec()
        assert spec.devices == 100_000
        assert spec.bit_count == spec.ro_count // 2
        assert spec.nominal == NOMINAL_OPERATING_POINT
        assert spec.corners == DEFAULT_FLEET_CORNERS

    def test_shard_arithmetic_covers_every_device_once(self):
        assert SMALL.shard_count == 4  # 32+32+32+4
        bounds = [SMALL.shard_bounds(i) for i in range(SMALL.shard_count)]
        assert bounds[0] == (0, 32)
        assert bounds[-1] == (96, 100)  # ragged tail shard
        covered = [d for a, b in bounds for d in range(a, b)]
        assert covered == list(range(SMALL.devices))

    def test_shard_bounds_range_checked(self):
        with pytest.raises(IndexError):
            SMALL.shard_bounds(SMALL.shard_count)
        with pytest.raises(IndexError):
            SMALL.shard_bounds(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"devices": 0},
            {"ro_count": 0},
            {"ro_count": 7},  # odd: adjacent pairs need an even count
            {"shard_devices": 0},
            {"corners": ()},
            {"noise_sigma": -1e-6},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FleetSpec(**kwargs)

    def test_json_round_trip_is_exact(self):
        spec = FleetSpec(
            devices=123,
            ro_count=32,
            shard_devices=17,
            seed=99,
            corners=(
                NOMINAL_OPERATING_POINT,
                OperatingPoint(voltage=1.0, temperature=50.0),
            ),
            noise_sigma=1e-3,
        )
        assert FleetSpec.from_json(spec.to_json()) == spec
        # canonical encoding: stable across round trips
        assert FleetSpec.from_json(spec.to_json()).to_json() == spec.to_json()

    def test_draw_order_version_embedded_and_enforced(self):
        doc = SMALL.to_dict()
        assert doc["draw_order"] == FLEET_DRAW_ORDER
        doc["draw_order"] = "fleet-v0"
        with pytest.raises(ValueError, match="draw order"):
            FleetSpec.from_dict(doc)

    def test_fingerprint_tracks_content(self):
        assert SMALL.fingerprint() == SMALL.fingerprint()
        other = FleetSpec(devices=100, ro_count=16, shard_devices=32, seed=8)
        assert SMALL.fingerprint() != other.fingerprint()


class TestGenerateShard:
    def test_shapes_and_corners(self):
        shard = generate_shard(SMALL, 0)
        assert isinstance(shard, FleetShard)
        assert shard.device_count == 32
        assert set(shard.delays) == set(SMALL.corners)
        for delays in shard.delays.values():
            assert delays.shape == (32, SMALL.ro_count)
            assert np.all(delays > 0)
        assert shard.reference_bits().shape == (32, SMALL.bit_count)
        assert shard.reference_bits().dtype == bool

    def test_tail_shard_is_ragged(self):
        shard = generate_shard(SMALL, SMALL.shard_count - 1)
        assert shard.device_count == 4
        assert shard.delays[SMALL.nominal].shape == (4, SMALL.ro_count)

    def test_same_shard_regenerates_bit_identically(self):
        first = generate_shard(SMALL, 1)
        second = generate_shard(SMALL, 1)
        for op in SMALL.corners:
            assert np.array_equal(first.delays[op], second.delays[op])

    def test_shard_isolation_no_predecessors_needed(self):
        # generating shard 2 alone == generating it after 0 and 1
        alone = generate_shard(SMALL, 2)
        in_order = list(iter_shards(SMALL))[2]
        for op in SMALL.corners:
            assert np.array_equal(alone.delays[op], in_order.delays[op])

    def test_different_shards_differ(self):
        a = generate_shard(SMALL, 0).delays[SMALL.nominal]
        b = generate_shard(SMALL, 1).delays[SMALL.nominal][: len(a)]
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        reseeded = FleetSpec(devices=100, ro_count=16, shard_devices=32, seed=8)
        a = generate_shard(SMALL, 0).delays[SMALL.nominal]
        b = generate_shard(reseeded, 0).delays[reseeded.nominal]
        assert not np.array_equal(a, b)

    def test_golden_digest_pins_the_draw_order(self):
        # Bit-exact digest of shard 0's nominal delays.  If this changes,
        # the fleet-v1 draw order changed: bump FLEET_DRAW_ORDER and
        # update the digest together.
        delays = generate_shard(SMALL, 0).delays[SMALL.nominal]
        digest = hashlib.sha256(
            np.ascontiguousarray(delays, dtype="<f8").tobytes()
        ).hexdigest()
        assert digest == (
            "11dc80043626b29639046ee85c9607481dd68135d2475d649e2d6516492825f8"
        )

    def test_reference_bits_are_balanced(self):
        spec = FleetSpec(devices=2000, ro_count=64, shard_devices=2000, seed=3)
        bits = generate_shard(spec, 0).reference_bits()
        assert 0.45 < bits.mean() < 0.55  # ~50% uniformity

    def test_extreme_corner_flips_some_bits_but_not_many(self):
        spec = FleetSpec(devices=500, ro_count=64, shard_devices=500, seed=4)
        shard = generate_shard(spec, 0)
        reference = shard.reference_bits()
        low_v = shard.response_bits(spec.corners[1])
        flip_fraction = np.mean(reference != low_v)
        assert 0.0 < flip_fraction < 0.5

    def test_iter_shards_yields_every_shard(self):
        indexes = [shard.index for shard in iter_shards(SMALL)]
        assert indexes == list(range(SMALL.shard_count))
