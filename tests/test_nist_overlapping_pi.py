"""Tests of the exact overlapping-occurrence probability DP."""

import numpy as np
import pytest

from repro.nist.overlapping_pi import overlapping_occurrence_probabilities
from repro.nist.templates import _OVERLAPPING_PI, overlapping_template_test


class TestOverlappingProbabilities:
    def test_reproduces_spec_constants(self):
        """The DP must reproduce SP 800-22's printed m=9/M=1032 values."""
        pi = overlapping_occurrence_probabilities(9, 1032)
        assert np.allclose(pi, _OVERLAPPING_PI, atol=5e-7)

    def test_probabilities_sum_to_one(self):
        for m, block in ((2, 10), (3, 64), (5, 200)):
            pi = overlapping_occurrence_probabilities(m, block)
            assert pi.sum() == pytest.approx(1.0)
            assert np.all(pi >= 0.0)

    def test_exact_tiny_case_by_enumeration(self):
        """m=2, M=4: brute-force all 16 strings and count '11' overlaps."""
        counts = np.zeros(3)
        for code in range(16):
            bits = [(code >> i) & 1 for i in range(4)]
            occurrences = sum(
                bits[i] == 1 and bits[i + 1] == 1 for i in range(3)
            )
            counts[min(occurrences, 2)] += 1
        expected = counts / 16.0
        pi = overlapping_occurrence_probabilities(2, 4, max_category=2)
        assert np.allclose(pi, expected)

    def test_zero_occurrences_probability_known(self):
        # m=1, M=3: P(no ones in 3 bits) = 1/8.
        pi = overlapping_occurrence_probabilities(1, 3, max_category=3)
        assert pi[0] == pytest.approx(1.0 / 8.0)
        # exactly three ones: 1/8 as well
        assert pi[3] == pytest.approx(1.0 / 8.0)

    def test_longer_template_shifts_mass_to_zero(self):
        short = overlapping_occurrence_probabilities(3, 100)
        long = overlapping_occurrence_probabilities(8, 100)
        assert long[0] > short[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            overlapping_occurrence_probabilities(0, 10)
        with pytest.raises(ValueError):
            overlapping_occurrence_probabilities(3, 0)
        with pytest.raises(ValueError):
            overlapping_occurrence_probabilities(3, 10, max_category=0)


class TestParameterizedOverlappingTest:
    def test_custom_parameters_run(self, rng):
        # lambda = (M - m + 1) / 2**m = 2, like the spec's m=9/M=1032.
        bits = rng.integers(0, 2, 4000).astype(bool)
        outcome = overlapping_template_test(
            bits, template_length=6, block_length=133
        )
        assert 0.0 <= outcome.p_value <= 1.0
        assert outcome.details["block_count"] == 30

    def test_custom_parameters_pass_on_random(self, rng):
        failures = 0
        for _ in range(30):
            bits = rng.integers(0, 2, 3200).astype(bool)
            outcome = overlapping_template_test(
                bits, template_length=6, block_length=133
            )
            failures += int(outcome.p_value < 0.01)
        assert failures <= 3

    def test_custom_parameters_catch_sticky_bits(self, rng):
        from repro.nist.generators import markov_stream

        bits = markov_stream(4000, 0.8, rng)
        outcome = overlapping_template_test(
            bits, template_length=6, block_length=133
        )
        assert outcome.p_value < 1e-6

    def test_parameter_validation(self, rng):
        bits = rng.integers(0, 2, 2000).astype(bool)
        with pytest.raises(ValueError):
            overlapping_template_test(bits, template_length=1)
        with pytest.raises(ValueError):
            overlapping_template_test(bits, template_length=8, block_length=8)
