"""Tests of the extended selection algorithms."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.selection import select_case1, select_case2
from repro.core.selection_ext import (
    select_case1_offset,
    select_case2_offset,
    select_unconstrained,
)

delay_vectors = st.integers(1, 8).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(0.5, 1.5), min_size=n, max_size=n),
        st.lists(st.floats(0.5, 1.5), min_size=n, max_size=n),
    )
)


class TestUnconstrained:
    def test_margin_dominates_case2(self, rng):
        for _ in range(50):
            n = int(rng.integers(2, 10))
            alpha = rng.normal(1.0, 0.1, n)
            beta = rng.normal(1.0, 0.1, n)
            free = select_unconstrained(alpha, beta)
            constrained = select_case2(alpha, beta)
            assert free.abs_margin >= constrained.abs_margin - 1e-12

    def test_counts_are_extreme(self, rng):
        alpha = rng.normal(1.0, 0.1, 6)
        beta = rng.normal(1.0, 0.1, 6)
        selection = select_unconstrained(alpha, beta)
        counts = {
            selection.top_config.selected_count,
            selection.bottom_config.selected_count,
        }
        assert counts == {1, 6}

    def test_count_difference_reveals_bit(self, rng):
        # The leak the paper's constraint prevents: slower ring selects more.
        for _ in range(100):
            n = int(rng.integers(2, 10))
            alpha = rng.normal(1.0, 0.1, n)
            beta = rng.normal(1.0, 0.1, n)
            selection = select_unconstrained(alpha, beta)
            count_difference = (
                selection.top_config.selected_count
                - selection.bottom_config.selected_count
            )
            assert (count_difference > 0) == selection.bit

    @given(delay_vectors)
    def test_margin_consistency(self, vectors):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        selection = select_unconstrained(alpha, beta)
        top = selection.top_config.as_array()
        bottom = selection.bottom_config.as_array()
        assert selection.margin == pytest.approx(
            float(np.sum(alpha[top]) - np.sum(beta[bottom])), rel=1e-9
        )


class TestCase1Offset:
    def test_zero_offset_matches_case1(self, rng):
        for _ in range(50):
            n = int(rng.integers(1, 10))
            alpha = rng.normal(1.0, 0.1, n)
            beta = rng.normal(1.0, 0.1, n)
            base = select_case1(alpha, beta)
            shifted = select_case1_offset(alpha, beta, offset=0.0)
            assert shifted.abs_margin == pytest.approx(base.abs_margin, rel=1e-9)

    def test_large_offset_dominates_direction(self):
        alpha = np.array([1.0, 1.0])
        beta = np.array([0.9, 1.2])  # deltas +0.1, -0.2
        selection = select_case1_offset(alpha, beta, offset=10.0)
        # offset >> deltas: choose the direction reinforcing it (+).
        assert selection.margin == pytest.approx(10.1)
        assert selection.top_config.to_string() == "10"

    def test_offset_included_in_margin(self, rng):
        alpha = rng.normal(1.0, 0.1, 5)
        beta = rng.normal(1.0, 0.1, 5)
        offset = 0.03
        selection = select_case1_offset(alpha, beta, offset)
        mask = selection.top_config.as_array()
        expected = float(np.sum(alpha[mask]) - np.sum(beta[mask])) + offset
        assert selection.margin == pytest.approx(expected, rel=1e-9)

    @given(delay_vectors, st.floats(-0.5, 0.5))
    def test_beats_offset_blind_selection(self, vectors, offset):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        blind = select_case1(alpha, beta)
        blind_actual = abs(blind.margin + offset)
        aware = select_case1_offset(alpha, beta, offset)
        assert abs(aware.margin) >= blind_actual - 1e-9


class TestCase2Offset:
    def test_zero_offset_matches_case2(self, rng):
        for _ in range(50):
            n = int(rng.integers(1, 10))
            alpha = rng.normal(1.0, 0.1, n)
            beta = rng.normal(1.0, 0.1, n)
            base = select_case2(alpha, beta)
            shifted = select_case2_offset(alpha, beta, offset=0.0)
            assert shifted.abs_margin >= base.abs_margin - 1e-9

    def test_equal_counts_preserved(self, rng):
        alpha = rng.normal(1.0, 0.1, 7)
        beta = rng.normal(1.0, 0.1, 7)
        selection = select_case2_offset(alpha, beta, offset=0.02)
        assert (
            selection.top_config.selected_count
            == selection.bottom_config.selected_count
        )

    @given(delay_vectors, st.floats(-0.5, 0.5))
    def test_beats_offset_blind_selection(self, vectors, offset):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        blind = select_case2(alpha, beta)
        blind_actual = abs(blind.margin + offset)
        aware = select_case2_offset(alpha, beta, offset)
        assert abs(aware.margin) >= blind_actual - 1e-9

    @given(delay_vectors, st.floats(-0.5, 0.5))
    def test_margin_includes_offset(self, vectors, offset):
        alpha, beta = np.array(vectors[0]), np.array(vectors[1])
        selection = select_case2_offset(alpha, beta, offset)
        top = selection.top_config.as_array()
        bottom = selection.bottom_config.as_array()
        expected = float(np.sum(alpha[top]) - np.sum(beta[bottom])) + offset
        assert selection.margin == pytest.approx(expected, rel=1e-9, abs=1e-12)
