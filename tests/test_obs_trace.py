"""Tests of the span tracing layer: nesting, buffering, serialization,
and the merged multi-process trace of a parallel pipeline run."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.pipeline import run_pipeline


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable_tracing()
    obs.reset_tracing()
    obs.disable_metrics()
    obs.reset_metrics()
    yield
    obs.disable_tracing()
    obs.reset_tracing()
    obs.disable_metrics()
    obs.reset_metrics()


def _check_well_formed(spans):
    """The invariants every span forest must satisfy (see docs)."""
    by_id = {record["id"]: record for record in spans}
    assert len(by_id) == len(spans), "span ids must be unique"
    for record in spans:
        assert record["type"] == "span"
        assert record["t1"] is not None
        assert record["t1"] >= record["t0"]
        parent_id = record["parent"]
        if parent_id is not None:
            assert parent_id in by_id, f"dangling parent {parent_id}"
            parent = by_id[parent_id]
            # parent links never cross a process boundary
            assert parent["pid"] == record["pid"]
            # the child interval nests inside the parent interval
            assert parent["t0"] <= record["t0"]
            assert record["t1"] <= parent["t1"]
    # spans append on completion, so t1 is non-decreasing per process
    for pid in {record["pid"] for record in spans}:
        ends = [r["t1"] for r in spans if r["pid"] == pid]
        assert ends == sorted(ends)


class TestSpanBasics:
    def test_disabled_span_records_nothing(self):
        with obs.span("ignored", detail=1) as handle:
            handle.set_attr("late", True)  # must be a harmless no-op
        assert obs.buffered_spans() == []

    def test_disabled_span_is_shared_singleton(self):
        # the disabled path must not allocate per call
        assert obs.span("a") is obs.span("b")

    def test_enabled_span_records_interval_and_attrs(self):
        obs.enable_tracing()
        with obs.span("outer", jobs=2) as handle:
            handle.set_attr("late", "yes")
        (record,) = obs.buffered_spans()
        assert record["name"] == "outer"
        assert record["attrs"] == {"jobs": 2, "late": "yes"}
        assert record["parent"] is None
        assert record["t1"] >= record["t0"]

    def test_nesting_links_parents(self):
        obs.enable_tracing()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("sibling"):
                pass
        inner, sibling, outer = obs.buffered_spans()  # completion order
        assert (inner["name"], sibling["name"], outer["name"]) == (
            "inner", "sibling", "outer"
        )
        assert inner["parent"] == outer["id"]
        assert sibling["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_span_survives_exception(self):
        obs.enable_tracing()
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise RuntimeError("boom")
        _check_well_formed(obs.buffered_spans())
        # the nesting stack unwound: a fresh span is a root again
        with obs.span("after"):
            pass
        assert obs.buffered_spans()[-1]["parent"] is None

    def test_drain_empties_buffer(self):
        obs.enable_tracing()
        with obs.span("one"):
            pass
        drained = obs.drain_spans()
        assert len(drained) == 1
        assert obs.buffered_spans() == []

    def test_extend_merges_foreign_spans(self):
        obs.enable_tracing()
        foreign = [
            {
                "type": "span", "id": "999-1", "parent": None,
                "name": "remote", "pid": 999, "t0": 0.0, "t1": 1.0,
                "wall0": 0.0, "attrs": {},
            }
        ]
        obs.extend_spans(foreign)
        assert obs.buffered_spans() == foreign


class TestTraceFile:
    def test_write_read_round_trip(self, tmp_path):
        obs.enable_tracing()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        obs.write_trace(path, metrics={"schema": 1, "counters": {"x": 1.0},
                                       "gauges": {}, "histograms": {}})
        spans, metrics = obs.read_trace(path)
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert metrics["counters"] == {"x": 1.0}
        # the file is honest JSONL with a schema header
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {
            "type": "header",
            "schema": obs.TRACE_SCHEMA,
            "pid": first["pid"],
            "span_count": 2,
        }

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "header", "schema": 99}) + "\n")
        with pytest.raises(ValueError, match="schema-1"):
            obs.read_trace(path)

    def test_read_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            obs.read_trace(path)


#: Random span trees: each node is a list of children.
_TREES = st.recursive(
    st.just([]), lambda children: st.lists(children, max_size=4), max_leaves=12
)


class TestSpanProperties:
    @settings(max_examples=50, deadline=None)
    @given(forest=st.lists(_TREES, min_size=1, max_size=4))
    def test_any_nesting_produces_well_formed_forest(self, forest):
        obs.disable_tracing()
        obs.reset_tracing()
        obs.enable_tracing()

        def run(tree, depth):
            with obs.span(f"level{depth}", fanout=len(tree)):
                for child in tree:
                    run(child, depth + 1)

        for tree in forest:
            run(tree, 0)
        spans = obs.drain_spans()
        obs.disable_tracing()

        def count(tree):
            return 1 + sum(count(child) for child in tree)

        assert len(spans) == sum(count(tree) for tree in forest)
        assert sum(1 for s in spans if s["parent"] is None) == len(forest)
        _check_well_formed(spans)


class TestPipelineTrace:
    def test_two_worker_run_merges_processes_and_reconciles_timings(
        self, tmp_path
    ):
        trace_path = tmp_path / "trace.jsonl"
        tasks = ["table5_bits", "sec4e_threshold"]
        summary = run_pipeline(
            tasks=tasks, jobs=2, timings=True, trace=trace_path
        )
        spans, metrics = obs.read_trace(trace_path)
        _check_well_formed(spans)

        # spans from the parent AND both workers made it into one file
        pids = {record["pid"] for record in spans}
        assert len(pids) >= 2

        names = [record["name"] for record in spans]
        assert "pipeline.run" in names
        for task in tasks:
            assert f"task:{task}" in names

        # each task:<name> span reconciles with the _pipeline wall time:
        # both wrap the same retry loop, so they agree to within a coarse
        # tolerance (canonicalisation inside, payload assembly outside).
        by_task = {
            record["task"]: record for record in summary["_pipeline"]["tasks"]
        }
        for record in spans:
            if not record["name"].startswith("task:"):
                continue
            task = record["name"].removeprefix("task:")
            duration = record["t1"] - record["t0"]
            wall = by_task[task]["wall_seconds"]
            assert abs(duration - wall) <= 0.05 + 0.25 * wall
            assert record["pid"] == by_task[task]["process"]

        # the trailing metrics record matches the summary's merged block
        assert metrics == summary["_metrics"]
        # both tasks enroll PUFs through the batch engine, so the counter
        # shipped back from the worker processes must be nonzero
        assert metrics["counters"]["noise.elements.enroll-v1"] > 0

    def test_trace_does_not_change_results(self, tmp_path):
        plain = run_pipeline(tasks=["table5_bits"])
        traced = run_pipeline(
            tasks=["table5_bits"], trace=tmp_path / "t.jsonl"
        )
        assert plain["table5_bits"] == traced["table5_bits"]

    def test_tracing_restored_after_traced_run(self, tmp_path):
        assert not obs.tracing_enabled()
        run_pipeline(tasks=["table5_bits"], trace=tmp_path / "t.jsonl")
        assert not obs.tracing_enabled()
        assert not obs.metrics_enabled()
