"""Request-scoped tracing and tail-based sampling.

Covers the unit layer (request-id context propagation into spans, the
:class:`~repro.obs.requests.TailSampler` retention rules) and the
end-to-end acceptance shape: a single slow auth request against a live
:class:`AuthServer` yields one connected span tree — serve frame →
coalescer dispatch → batch engine — with the same request id on every
span.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.requests import TailSampler
from repro.serve import (
    AuthClient,
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable_tracing()
    obs.reset_tracing()
    obs.disable_metrics()
    obs.reset_metrics()
    yield
    obs.disable_tracing()
    obs.reset_tracing()
    obs.disable_metrics()
    obs.reset_metrics()


class TestRequestContext:
    def test_ids_are_process_unique_and_monotone(self):
        first, second = obs.new_request_id(), obs.new_request_id()
        assert first != second
        assert first.startswith("r")

    def test_no_context_by_default(self):
        assert obs.current_request_id() is None

    def test_context_scopes_and_nests(self):
        with obs.request_context("r-1"):
            assert obs.current_request_id() == "r-1"
            with obs.request_context("r-2"):
                assert obs.current_request_id() == "r-2"
            assert obs.current_request_id() == "r-1"
        assert obs.current_request_id() is None

    def test_spans_inherit_the_request_id(self):
        obs.enable_tracing()
        with obs.request_context("r-42"):
            with obs.span("inner"):
                pass
        with obs.span("outside"):
            pass
        spans = {record["name"]: record for record in obs.drain_spans()}
        assert spans["inner"]["attrs"]["request_id"] == "r-42"
        assert "request_id" not in spans["outside"]["attrs"]

    def test_explicit_attr_wins(self):
        obs.enable_tracing()
        with obs.request_context("r-ambient"):
            with obs.span("s", request_id="r-explicit"):
                pass
        (record,) = obs.drain_spans()
        assert record["attrs"]["request_id"] == "r-explicit"

    def test_context_does_not_leak_across_threads(self):
        seen = []
        with obs.request_context("r-main"):
            thread = threading.Thread(
                target=lambda: seen.append(obs.current_request_id())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestTailSampler:
    def _spans_for(self, *request_ids, name="s"):
        obs.enable_tracing()
        if len(request_ids) == 1:
            with obs.request_context(request_ids[0]):
                with obs.span(name):
                    pass
        else:
            with obs.span(name, request_ids=list(request_ids)):
                pass

    def test_fast_requests_are_dropped(self):
        sampler = TailSampler(slow_ms=100.0)
        sampler.begin("r-1")
        self._spans_for("r-1")
        sampler.finish("r-1", latency_ms=5.0)
        assert sampler.trees() == {}
        assert sampler.stats()["dropped_spans"] == 1

    def test_slow_requests_are_retained(self):
        sampler = TailSampler(slow_ms=100.0)
        sampler.begin("r-1")
        self._spans_for("r-1")
        sampler.finish("r-1", latency_ms=250.0)
        trees = sampler.trees()
        assert set(trees) == {"r-1"}
        assert trees["r-1"][0]["attrs"]["request_id"] == "r-1"

    def test_ambient_spans_are_dropped(self):
        obs.enable_tracing()
        sampler = TailSampler(slow_ms=0.0)
        sampler.begin("r-1")
        with obs.span("ambient.machinery"):
            pass
        sampler.finish("r-1", latency_ms=10.0)
        assert all(
            record["name"] != "ambient.machinery"
            for records in sampler.trees().values()
            for record in records
        )

    def test_batch_span_held_until_all_members_finish(self):
        sampler = TailSampler(slow_ms=100.0)
        sampler.begin("r-fast")
        sampler.begin("r-slow")
        self._spans_for("r-fast", "r-slow", name="dispatch")
        sampler.finish("r-fast", latency_ms=1.0)
        # r-slow still in flight: the shared span must not be decided.
        assert sampler.trees() == {}
        assert sampler.stats()["held_spans"] == 1
        sampler.finish("r-slow", latency_ms=500.0)
        trees = sampler.trees()
        assert set(trees) == {"r-slow"}
        assert trees["r-slow"][0]["name"] == "dispatch"
        assert sampler.stats()["held_spans"] == 0

    def test_shared_span_dedup_in_flat_export(self):
        sampler = TailSampler(slow_ms=10.0)
        sampler.begin("r-a")
        sampler.begin("r-b")
        self._spans_for("r-a", "r-b", name="dispatch")
        sampler.finish("r-a", latency_ms=50.0)
        sampler.finish("r-b", latency_ms=50.0)
        assert set(sampler.trees()) == {"r-a", "r-b"}
        assert len(sampler.spans()) == 1  # shared span exported once

    def test_tree_capacity_evicts_oldest(self):
        sampler = TailSampler(slow_ms=0.0, max_trees=2)
        for n in range(3):
            rid = f"r-{n}"
            sampler.begin(rid)
            self._spans_for(rid)
            sampler.finish(rid, latency_ms=1.0)
        assert set(sampler.trees()) == {"r-1", "r-2"}

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match="slow_ms"):
            TailSampler(slow_ms=-1.0)


class TestEndToEndSlowAuth:
    """The acceptance shape: one slow auth → one connected span tree."""

    def test_slow_attest_tree_spans_frame_to_batch_engine(self):
        obs.enable_tracing()
        farm = DeviceFarm.from_config(FleetConfig(boards=1))
        service = AuthService(farm, CRPStore(None))
        service.enroll_fleet()
        # slow_ms=0: every request is "slow", so the single attest below
        # is deterministically retained without real-time sleeps.
        sampler = TailSampler(slow_ms=0.0)
        server = AuthServer(service, sampler=sampler).start()
        try:
            host, port = server.address
            with AuthClient(host, port) as client:
                device_id = farm.device_ids[0]
                corner = farm.device(device_id).corners[0]
                response = client.attest(device_id, corner)
                assert response["ok"] is True
        finally:
            server.stop()
        trees = sampler.trees()
        assert len(trees) == 1
        ((request_id, spans),) = trees.items()
        names = {record["name"] for record in spans}
        # Frame boundary, coalescer dispatch, and the batch engine's own
        # span are all present...
        assert "serve.request" in names
        assert "serve.coalesce.dispatch" in names
        assert "batch.coalesce_responses" in names
        # ...every span carries the same request id...
        for record in spans:
            refs = set(record["attrs"].get("request_ids", []))
            single = record["attrs"].get("request_id")
            if single is not None:
                refs.add(single)
            assert refs == {request_id}, record
        # ...and the tree is connected: the batch-engine span is parented
        # under the dispatch span (same dispatcher thread), and the serve
        # frame is the handler-thread root.
        by_id = {record["id"]: record for record in spans}
        batch = next(
            record
            for record in spans
            if record["name"] == "batch.coalesce_responses"
        )
        dispatch = by_id[batch["parent"]]
        assert dispatch["name"] == "serve.coalesce.dispatch"
        frame = next(
            record for record in spans if record["name"] == "serve.request"
        )
        assert frame["parent"] is None
        assert frame["attrs"]["verb"] == "attest"
