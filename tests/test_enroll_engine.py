"""The batch enrollment engine: byte-identity pins and draw-order contracts."""

import numpy as np
import pytest

from repro.core.batch import chip_enroll_loop_reference, enroll_loop_reference
from repro.core.measurement import (
    ENROLL_DRAW_ORDER,
    DelayMeasurer,
    leave_one_out_vectors,
    measure_ddiffs_leave_one_out,
    measure_ddiffs_leave_one_out_batch,
)
from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF, ChipROPUF
from repro.silicon.fabrication import FabricationProcess
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from repro.variation.noise import GaussianNoise, NoiselessMeasurement


def _board(stage_count: int, ring_count: int = 16, seed: int = 3):
    rng = np.random.default_rng(seed)
    delays = rng.normal(1e-9, 1.2e-10, size=stage_count * ring_count + 5)
    return lambda op: delays * (1.0 + 0.01 * (op.voltage - 1.20))


def _ops(count: int) -> list[OperatingPoint]:
    return [
        OperatingPoint(voltage=1.08 + 0.06 * i, temperature=25.0)
        for i in range(count)
    ]


class TestBoardEnrollByteIdentity:
    @pytest.mark.parametrize("method", ["case1", "case2", "traditional"])
    @pytest.mark.parametrize("require_odd", [False, True])
    @pytest.mark.parametrize("stage_count", [5, 9, 15])
    def test_enroll_equals_loop_reference(self, method, require_odd, stage_count):
        allocation = RingAllocation(stage_count=stage_count, ring_count=16)
        puf = BoardROPUF(
            delay_provider=_board(stage_count),
            allocation=allocation,
            method=method,
            require_odd=require_odd,
        )
        batch = puf.enroll()
        loop = enroll_loop_reference(puf, NOMINAL_OPERATING_POINT)
        assert np.array_equal(batch.bits, loop.bits)
        assert np.array_equal(batch.margins, loop.margins)
        assert batch.selections == loop.selections

    def test_enroll_sweep_equals_per_corner_enrolls(self):
        allocation = RingAllocation(stage_count=7, ring_count=16)
        puf = BoardROPUF(
            delay_provider=_board(7),
            allocation=allocation,
            method="case2",
            require_odd=True,
        )
        ops = _ops(4)
        sweep = puf.enroll_sweep(ops)
        assert len(sweep) == len(ops)
        for op, enrollment in zip(ops, sweep):
            single = puf.enroll(op)
            assert enrollment.operating_point == op
            assert np.array_equal(enrollment.bits, single.bits)
            assert np.array_equal(enrollment.margins, single.margins)
            assert enrollment.selections == single.selections

    def test_enroll_sweep_rejects_empty(self):
        puf = BoardROPUF(
            delay_provider=_board(5),
            allocation=RingAllocation(stage_count=5, ring_count=16),
        )
        with pytest.raises(ValueError, match="no operating points"):
            puf.enroll_sweep([])


@pytest.fixture
def small_chip():
    return FabricationProcess().fabricate(
        220, np.random.default_rng(17), name="enroll-engine"
    )


def _chip_puf(chip, method="case1", noise=None, repeats=3, seed=0, **kwargs):
    measurer = DelayMeasurer(
        noise=noise if noise is not None else NoiselessMeasurement(),
        repeats=repeats,
        rng=np.random.default_rng(seed),
    )
    allocation = RingAllocation(stage_count=5, ring_count=8)
    return ChipROPUF(
        chip=chip,
        allocation=allocation,
        method=method,
        measurer=measurer,
        **kwargs,
    )


class TestChipEnrollEngine:
    def test_default_enroll_matches_loop_reference(self, small_chip):
        # The default per-pair path must keep its legacy draw order.
        noisy = GaussianNoise(relative_sigma=5e-4)
        puf_a = _chip_puf(small_chip, noise=noisy, seed=9)
        puf_b = _chip_puf(small_chip, noise=GaussianNoise(relative_sigma=5e-4), seed=9)
        enrollment = puf_a.enroll()
        reference = chip_enroll_loop_reference(puf_b, NOMINAL_OPERATING_POINT)
        assert np.array_equal(enrollment.bits, reference.bits)
        assert np.array_equal(enrollment.margins, reference.margins)
        assert enrollment.selections == reference.selections

    @pytest.mark.parametrize("method", ["case1", "case2", "traditional"])
    def test_enroll_batch_noiseless_equals_legacy(self, small_chip, method):
        batch = _chip_puf(small_chip, method=method).enroll_batch()
        legacy = _chip_puf(small_chip, method=method).enroll()
        assert np.array_equal(batch.bits, legacy.bits)
        assert np.array_equal(batch.margins, legacy.margins)
        assert batch.selections == legacy.selections

    def test_enroll_sweep_noiseless_equals_enroll_batch(self, small_chip):
        ops = _ops(3)
        sweep = _chip_puf(small_chip, method="case2").enroll_sweep(ops)
        for op, enrollment in zip(ops, sweep):
            single = _chip_puf(small_chip, method="case2").enroll_batch(op)
            assert enrollment.operating_point == op
            assert np.array_equal(enrollment.bits, single.bits)
            assert np.array_equal(enrollment.margins, single.margins)
            assert enrollment.selections == single.selections

    def test_enroll_batch_draw_order_contract(self, small_chip):
        # "enroll-v1": the (ring, config) leave-one-out matrix is observed
        # first, then the top reference vector, then the bottom one.
        # Replicate those three draws manually with an identically-seeded
        # measurer and check enroll_batch consumed the generator the same
        # way.
        noise = GaussianNoise(relative_sigma=5e-4)
        puf = _chip_puf(small_chip, noise=noise, seed=21)
        enrollment = puf.enroll_batch()

        replica = DelayMeasurer(
            noise=GaussianNoise(relative_sigma=5e-4),
            repeats=3,
            rng=np.random.default_rng(21),
        )
        allocation = puf.allocation
        rings = [puf.ring(index) for index in range(allocation.ring_count)]
        estimate = measure_ddiffs_leave_one_out_batch(replica, rings)
        pairs = allocation.pair_ring_matrix()
        selections = enrollment.selections
        top_true = np.array(
            [
                rings[pairs[p, 0]].chain_delay(selections[p].top_config)
                for p in range(allocation.pair_count)
            ]
        )
        bottom_true = np.array(
            [
                rings[pairs[p, 1]].chain_delay(selections[p].bottom_config)
                for p in range(allocation.pair_count)
            ]
        )
        top_obs = replica.noise.observe_averaged(top_true, replica.rng, replica.repeats)
        bottom_obs = replica.noise.observe_averaged(
            bottom_true, replica.rng, replica.repeats
        )
        assert np.array_equal(enrollment.bits, top_obs > bottom_obs)
        # and the selections came from exactly those batch ddiffs
        ddiffs_top = estimate.ddiffs[pairs[:, 0]]
        assert ddiffs_top.shape == (allocation.pair_count, 5)

    def test_offset_aware_rejects_batch_paths(self, small_chip):
        puf = _chip_puf(small_chip, method="case2", offset_aware=True)
        with pytest.raises(ValueError, match="offset_aware"):
            puf.enroll_batch()
        with pytest.raises(ValueError, match="offset_aware"):
            puf.enroll_sweep(_ops(2))

    def test_enroll_sweep_rejects_empty(self, small_chip):
        with pytest.raises(ValueError, match="no operating points"):
            _chip_puf(small_chip).enroll_sweep([])


class TestBatchLeaveOneOut:
    def test_noiseless_rows_match_sequential_extraction(self, small_chip):
        measurer = DelayMeasurer(noise=NoiselessMeasurement(), repeats=1)
        allocation = RingAllocation(stage_count=5, ring_count=8)
        puf = ChipROPUF(chip=small_chip, allocation=allocation, measurer=measurer)
        rings = [puf.ring(index) for index in range(allocation.ring_count)]
        batch = measure_ddiffs_leave_one_out_batch(measurer, rings)
        assert batch.ring_count == len(rings)
        assert batch.configs == leave_one_out_vectors(5)
        for index, ring in enumerate(rings):
            single = measure_ddiffs_leave_one_out(measurer, ring)
            assert np.array_equal(batch.ddiffs[index], single.ddiffs)
            assert np.array_equal(batch.measurements[index], single.measurements)
            view = batch.estimate(index)
            assert np.array_equal(view.ddiffs, single.ddiffs)
            assert view.configs == single.configs

    def test_rejects_empty_and_mixed_rings(self, small_chip):
        measurer = DelayMeasurer(noise=NoiselessMeasurement())
        with pytest.raises(ValueError, match="at least one ring"):
            measure_ddiffs_leave_one_out_batch(measurer, [])
        allocation = RingAllocation(stage_count=5, ring_count=8)
        puf = ChipROPUF(chip=small_chip, allocation=allocation, measurer=measurer)
        other_chip = FabricationProcess().fabricate(
            64, np.random.default_rng(1), name="other"
        )
        other = ChipROPUF(
            chip=other_chip,
            allocation=RingAllocation(stage_count=5, ring_count=2),
            measurer=measurer,
        )
        with pytest.raises(ValueError, match="one chip"):
            measure_ddiffs_leave_one_out_batch(measurer, [puf.ring(0), other.ring(0)])


def test_enroll_draw_order_constant():
    assert ENROLL_DRAW_ORDER == "enroll-v1"
