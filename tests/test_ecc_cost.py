"""Tests of the ECC-cost analysis."""

import pytest

from repro.analysis.ecc_cost import (
    block_failure_probability,
    required_bch_strength,
)


class TestBlockFailureProbability:
    def test_zero_error_rate(self):
        assert block_failure_probability(0.0, 127, 0) == 0.0

    def test_certain_error(self):
        assert block_failure_probability(1.0, 15, 7) == pytest.approx(1.0)

    def test_monotone_in_t(self):
        probabilities = [
            block_failure_probability(0.05, 63, t) for t in range(6)
        ]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_monotone_in_error_rate(self):
        low = block_failure_probability(0.01, 63, 3)
        high = block_failure_probability(0.05, 63, 3)
        assert high > low

    def test_validation(self):
        with pytest.raises(ValueError):
            block_failure_probability(-0.1, 63, 3)
        with pytest.raises(ValueError):
            block_failure_probability(0.1, 0, 3)
        with pytest.raises(ValueError):
            block_failure_probability(0.1, 63, -1)


class TestRequiredBchStrength:
    def test_zero_error_needs_nothing(self):
        requirement = required_bch_strength("perfect", 0.0)
        assert requirement.t == 0
        assert not requirement.needs_ecc
        assert requirement.overhead_bits_per_key_bit == 0.0

    def test_small_error_needs_small_code(self):
        requirement = required_bch_strength("good", 1e-5)
        assert 1 <= requirement.t <= 2
        assert requirement.failure_probability <= 1e-6

    def test_large_error_needs_large_code(self):
        small = required_bch_strength("good", 1e-4)
        large = required_bch_strength("bad", 0.02)
        assert large.t > small.t
        assert (
            large.overhead_bits_per_key_bit > small.overhead_bits_per_key_bit
        )

    def test_meets_target(self):
        for rate in (1e-5, 1e-3, 0.01, 0.03):
            requirement = required_bch_strength("s", rate, target_failure=1e-6)
            assert requirement.failure_probability <= 1e-6

    def test_hopeless_error_rate_raises(self):
        with pytest.raises(ValueError, match="no BCH code"):
            required_bch_strength("broken", 0.4, m=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_bch_strength("s", 0.01, target_failure=0.0)
