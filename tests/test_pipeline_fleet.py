"""Tests of the sharded fleet pipeline and dynamic task factories.

Covers the three guarantees `repro.pipeline.fleet` makes: shard task
names round-trip the full spec (so workers rebuild it from the name
alone), the sharded analysis equals a dense single-matrix computation,
and a run resumed from a partial journal produces bit-identical
statistics — the property the ``fleet-smoke`` CI job exercises with a
real mid-run kill.
"""

import json

import numpy as np
import pytest

from repro.datasets.fleet import FleetSpec, iter_shards
from repro.metrics.uniqueness import uniqueness_report
from repro.pipeline.fleet import (
    FLEET_TASK_PREFIX,
    compute_shard_stats,
    parse_shard_task_name,
    run_fleet_analysis,
    shard_task_name,
)
from repro.pipeline.registry import (
    TaskSpec,
    get_task,
    register_task_factory,
    resolve_tasks,
)

SPEC = FleetSpec(devices=200, ro_count=16, shard_devices=64, seed=11)


class TestShardTaskNames:
    def test_round_trip(self):
        name = shard_task_name(SPEC, 2)
        spec, index = parse_shard_task_name(name)
        assert (spec, index) == (SPEC, 2)

    def test_name_embeds_canonical_spec_json(self):
        name = shard_task_name(SPEC, 0)
        prefix, index, spec_json = name.split(":", 2)
        assert prefix == FLEET_TASK_PREFIX
        assert index == "0"
        assert json.loads(spec_json) == SPEC.to_dict()

    def test_different_specs_get_different_names(self):
        other = FleetSpec(devices=200, ro_count=16, shard_devices=64, seed=12)
        assert shard_task_name(SPEC, 0) != shard_task_name(other, 0)

    @pytest.mark.parametrize(
        "bad",
        ["fleet_shard", "fleet_shard:3", "not_fleet:0:{}", "fleet_shard::{}"],
    )
    def test_malformed_names_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_shard_task_name(bad)


class TestFactoryRegistry:
    def test_fleet_factory_resolves_through_get_task(self):
        name = shard_task_name(SPEC, 1)
        spec = get_task(name)
        assert spec.name == name
        assert spec.uses_dataset is False
        assert "shard 1" in spec.description

    def test_unknown_prefix_raises_listing_factories(self):
        with pytest.raises(KeyError, match=FLEET_TASK_PREFIX):
            get_task("no_such_family:0:{}")

    def test_bare_prefix_is_not_a_task(self):
        with pytest.raises(KeyError):
            get_task(FLEET_TASK_PREFIX)

    def test_duplicate_prefix_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_task_factory(FLEET_TASK_PREFIX, lambda name: None)

    def test_colon_in_prefix_rejected(self):
        with pytest.raises(ValueError, match="':'"):
            register_task_factory("a:b", lambda name: None)

    def test_factory_must_honor_the_requested_name(self):
        register_task_factory(
            "misbehaving_factory",
            lambda name: TaskSpec(
                name="wrong", runner=lambda: None, uses_dataset=False
            ),
        )
        with pytest.raises(ValueError, match="wrong"):
            get_task("misbehaving_factory:x")

    def test_resolve_tasks_appends_dynamic_after_static(self):
        names = [shard_task_name(SPEC, i) for i in (1, 0)]
        specs = resolve_tasks(["table1_nist_case1", *names])
        # the static task keeps registration order at the front; the
        # factory-built tasks follow in caller order
        assert specs[0].name == "table1_nist_case1"
        assert [s.name for s in specs[1:]] == names

    def test_resolve_tasks_collapses_duplicates(self):
        name = shard_task_name(SPEC, 0)
        specs = resolve_tasks([name, name])
        assert [s.name for s in specs] == [name]


def _dense_fleet_stats(spec):
    """The whole fleet as one dense matrix (test-only oracle)."""
    reference = np.concatenate(
        [shard.reference_bits() for shard in iter_shards(spec)]
    )
    return reference


class TestShardedEqualsDense:
    def test_compute_shard_stats_bookkeeping(self):
        stats = compute_shard_stats(SPEC, 3)
        assert (stats["start"], stats["stop"]) == SPEC.shard_bounds(3)
        assert stats["uniqueness"]["rows"] == stats["stop"] - stats["start"]
        # reliability saw every non-reference corner for every device
        assert stats["reliability"]["total_observations"] == (
            (len(SPEC.corners) - 1) * (stats["stop"] - stats["start"])
        )

    def test_fleet_analysis_matches_dense_oracle(self):
        summary = run_fleet_analysis(SPEC)
        assert summary["complete"] is True
        assert summary["devices"] == SPEC.devices
        assert summary["shards"]["folded"] == SPEC.shard_count

        reference = _dense_fleet_stats(SPEC)
        dense = uniqueness_report(reference)
        stream = summary["uniqueness"]
        assert stream["stream_count"] == dense.stream_count
        assert stream["mean_distance"] == pytest.approx(dense.mean_distance)
        assert stream["std_distance"] == pytest.approx(dense.std_distance)

        uniformity = summary["uniformity"]
        assert uniformity["mean_uniformity_percent"] == pytest.approx(
            100.0 * reference.mean()
        )

    def test_parallel_run_is_bit_identical_to_serial(self, tmp_path):
        serial = run_fleet_analysis(SPEC, jobs=1)
        parallel = run_fleet_analysis(SPEC, jobs=2)
        for key in ("uniqueness", "uniformity", "reliability"):
            assert serial[key] == parallel[key]


class TestJournalResume:
    def test_resume_from_partial_journal_is_bit_identical(self, tmp_path):
        journal_path = tmp_path / "fleet.jsonl"
        clean = run_fleet_analysis(SPEC, journal=journal_path)
        lines = journal_path.read_text().splitlines()
        assert len(lines) == SPEC.shard_count

        # simulate a crash after the first shard landed
        journal_path.write_text(lines[0] + "\n")
        resumed = run_fleet_analysis(SPEC, journal=journal_path)
        for key in ("devices", "uniqueness", "uniformity", "reliability"):
            assert resumed[key] == clean[key]
        # the journal was completed, not restarted
        assert len(journal_path.read_text().splitlines()) == SPEC.shard_count

    def test_resumed_run_replays_instead_of_recomputing(self, tmp_path):
        journal_path = tmp_path / "fleet.jsonl"
        run_fleet_analysis(SPEC, journal=journal_path)
        before = journal_path.read_text()
        run_fleet_analysis(SPEC, journal=journal_path)
        # a fully-journaled rerun appends nothing
        assert journal_path.read_text() == before

    def test_spec_change_invalidates_journal_entries(self, tmp_path):
        journal_path = tmp_path / "fleet.jsonl"
        run_fleet_analysis(SPEC, journal=journal_path)
        other = FleetSpec(devices=200, ro_count=16, shard_devices=64, seed=12)
        summary = run_fleet_analysis(other, journal=journal_path)
        assert summary["complete"] is True
        # both runs' shards now live side by side, keyed by their names
        assert len(journal_path.read_text().splitlines()) == 2 * SPEC.shard_count
