"""Unit tests of the operating-environment delay model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.variation.environment import (
    NOMINAL_OPERATING_POINT,
    DeviceSensitivities,
    EnvironmentModel,
    EnvironmentParameters,
    OperatingPoint,
)


class TestOperatingPoint:
    def test_defaults_are_the_nominal_corner(self):
        op = OperatingPoint()
        assert op.voltage == 1.20
        assert op.temperature == 25.0
        assert op == NOMINAL_OPERATING_POINT

    def test_kelvin_conversion(self):
        assert OperatingPoint(1.2, 25.0).kelvin == pytest.approx(298.15)
        assert OperatingPoint(1.2, 0.0).kelvin == pytest.approx(273.15)

    def test_label_format(self):
        assert OperatingPoint(0.98, 65.0).label() == "0.98V/65C"

    def test_rejects_non_positive_voltage(self):
        with pytest.raises(ValueError, match="voltage"):
            OperatingPoint(voltage=0.0)
        with pytest.raises(ValueError, match="voltage"):
            OperatingPoint(voltage=-1.2)

    def test_rejects_below_absolute_zero(self):
        with pytest.raises(ValueError, match="absolute zero"):
            OperatingPoint(voltage=1.2, temperature=-300.0)

    def test_is_hashable_and_ordered(self):
        a = OperatingPoint(0.98, 25.0)
        b = OperatingPoint(1.20, 25.0)
        assert a < b
        assert len({a, b, OperatingPoint(0.98, 25.0)}) == 2


class TestEnvironmentParameters:
    def test_defaults_valid(self):
        params = EnvironmentParameters()
        assert params.vth_mean > 0

    def test_rejects_negative_sigmas(self):
        with pytest.raises(ValueError):
            EnvironmentParameters(vth_sigma=-0.01)
        with pytest.raises(ValueError):
            EnvironmentParameters(alpha_sigma=-1.0)
        with pytest.raises(ValueError):
            EnvironmentParameters(mobility_exponent_sigma=-1.0)

    def test_rejects_non_positive_vth(self):
        with pytest.raises(ValueError):
            EnvironmentParameters(vth_mean=0.0)


class TestDeviceSensitivities:
    def test_shape_consistency_enforced(self):
        with pytest.raises(ValueError, match="share one shape"):
            DeviceSensitivities(
                vth=np.ones(3), alpha=np.ones(2), mobility_exponent=np.ones(3)
            )

    def test_take_subsets(self):
        s = DeviceSensitivities(
            vth=np.arange(5.0), alpha=np.arange(5.0), mobility_exponent=np.arange(5.0)
        )
        subset = s.take(np.array([1, 3]))
        assert len(subset) == 2
        assert subset.vth.tolist() == [1.0, 3.0]


class TestEnvironmentModel:
    def setup_method(self):
        self.model = EnvironmentModel()
        self.rng = np.random.default_rng(0)
        self.sens = self.model.sample_sensitivities(100, self.rng)

    def test_sample_count(self):
        assert self.sens.shape == (100,)

    def test_sample_negative_count_rejected(self):
        with pytest.raises(ValueError):
            self.model.sample_sensitivities(-1, self.rng)

    def test_scale_is_one_at_reference(self):
        factors = self.model.scale_factors(self.sens, NOMINAL_OPERATING_POINT)
        assert np.allclose(factors, 1.0)

    def test_lower_voltage_slows_devices(self):
        factors = self.model.scale_factors(self.sens, OperatingPoint(0.98, 25.0))
        assert np.all(factors > 1.0)

    def test_higher_voltage_speeds_devices(self):
        factors = self.model.scale_factors(self.sens, OperatingPoint(1.44, 25.0))
        assert np.all(factors < 1.0)

    def test_higher_temperature_slows_devices(self):
        # Mobility degradation dominates the Vth reduction at these corners.
        factors = self.model.scale_factors(self.sens, OperatingPoint(1.20, 65.0))
        assert np.all(factors > 1.0)

    def test_voltage_monotonicity_per_device(self):
        voltages = [0.98, 1.08, 1.20, 1.32, 1.44]
        scales = np.stack(
            [
                self.model.scale_factors(self.sens, OperatingPoint(v, 25.0))
                for v in voltages
            ]
        )
        assert np.all(np.diff(scales, axis=0) < 0.0)

    def test_devices_drift_differently(self):
        factors = self.model.scale_factors(self.sens, OperatingPoint(0.98, 25.0))
        assert np.std(factors) > 0.0

    def test_delays_at_scales_base(self):
        base = np.full(100, 500e-12)
        delays = self.model.delays_at(base, self.sens, NOMINAL_OPERATING_POINT)
        assert np.allclose(delays, base)

    def test_delays_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            self.model.delays_at(np.ones(3), self.sens, NOMINAL_OPERATING_POINT)

    def test_voltage_below_threshold_rejected(self):
        with pytest.raises(ValueError, match="alpha-power"):
            self.model.scale_factors(self.sens, OperatingPoint(0.3, 25.0))

    @given(
        voltage=st.floats(0.9, 1.5),
        temperature=st.floats(0.0, 85.0),
    )
    def test_scale_factors_positive_everywhere(self, voltage, temperature):
        model = EnvironmentModel()
        sens = model.sample_sensitivities(10, np.random.default_rng(1))
        factors = model.scale_factors(sens, OperatingPoint(voltage, temperature))
        assert np.all(factors > 0.0)

    def test_deterministic_given_seed(self):
        a = EnvironmentModel().sample_sensitivities(8, np.random.default_rng(5))
        b = EnvironmentModel().sample_sensitivities(8, np.random.default_rng(5))
        assert np.array_equal(a.vth, b.vth)
        assert np.array_equal(a.alpha, b.alpha)
