"""Cross-cutting property tests: invariants that must hold everywhere.

These complement the per-module suites by fuzzing whole pipelines with
hypothesis-generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config_vector import ConfigVector
from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF
from repro.core.selection import select_case1, select_case2, select_traditional
from repro.core.serialization import enrollment_from_dict, enrollment_to_dict
from repro.metrics.hamming import pairwise_hamming_distances
from repro.metrics.reliability import bit_flip_report
from repro.nist.suite import run_battery
from repro.variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint

positive_delays = st.lists(
    st.floats(0.1, 10.0, allow_nan=False), min_size=2, max_size=10
)


class TestSelectionInvariants:
    @given(positive_delays, st.integers(0, 2**16))
    def test_margin_magnitude_ordering(self, alpha_list, seed):
        """traditional <= case1 <= case2 in |margin| on identical inputs."""
        alpha = np.array(alpha_list)
        rng = np.random.default_rng(seed)
        beta = alpha * rng.uniform(0.9, 1.1, len(alpha))
        traditional = select_traditional(alpha, beta)
        case1 = select_case1(alpha, beta)
        case2 = select_case2(alpha, beta)
        assert case1.abs_margin >= traditional.abs_margin - 1e-12
        assert case2.abs_margin >= case1.abs_margin - 1e-12

    @given(positive_delays)
    def test_selection_invariant_under_pair_swap(self, alpha_list):
        """Swapping the two rings negates the margin, same |magnitude|."""
        alpha = np.array(alpha_list)
        beta = alpha[::-1].copy()
        forward = select_case2(alpha, beta)
        backward = select_case2(beta, alpha)
        assert forward.abs_margin == pytest.approx(backward.abs_margin, rel=1e-9)

    @given(positive_delays, st.floats(0.1, 10.0))
    def test_case1_scale_equivariance(self, alpha_list, scale):
        """Scaling all delays scales the margin linearly."""
        alpha = np.array(alpha_list)
        beta = alpha * 1.01
        base = select_case1(alpha, beta)
        scaled = select_case1(scale * alpha, scale * beta)
        assert scaled.margin == pytest.approx(scale * base.margin, rel=1e-9)
        assert scaled.top_config == base.top_config

    @given(positive_delays, st.floats(-1.0, 1.0))
    def test_case1_shift_invariance_of_config(self, alpha_list, shift):
        """Adding a constant to both rings' delays changes nothing.

        (The 1.013 scale on beta avoids exact direction ties, where the
        winner is legitimately arbitrary.)
        """
        alpha = np.array(alpha_list)
        beta = alpha[::-1] * 1.013
        base = select_case1(alpha, beta)
        shifted = select_case1(alpha + shift + 2.0, beta + shift + 2.0)
        assert shifted.top_config == base.top_config
        assert shifted.margin == pytest.approx(base.margin, rel=1e-9, abs=1e-12)


class TestPufInvariants:
    @settings(max_examples=20)
    @given(st.integers(0, 2**16), st.integers(2, 5), st.booleans())
    def test_enrollment_response_fixed_point(self, seed, stage_count, odd):
        """Responding at the enrollment corner reproduces the bits."""
        rng = np.random.default_rng(seed)
        units = stage_count * 8
        delays = rng.normal(1.0, 0.03, units)
        allocation = RingAllocation(stage_count=stage_count, ring_count=8)
        puf = BoardROPUF(
            delay_provider=lambda op: delays,
            allocation=allocation,
            method="case2",
            require_odd=odd,
        )
        enrollment = puf.enroll()
        response = puf.response(NOMINAL_OPERATING_POINT, enrollment)
        assert np.array_equal(response, enrollment.bits)

    @settings(max_examples=20)
    @given(st.integers(0, 2**16))
    def test_serialization_preserves_response_behaviour(self, seed):
        rng = np.random.default_rng(seed)
        delays = rng.normal(1.0, 0.03, 24)
        allocation = RingAllocation(stage_count=3, ring_count=8)
        puf = BoardROPUF(
            delay_provider=lambda op: delays, allocation=allocation
        )
        enrollment = puf.enroll()
        restored = enrollment_from_dict(enrollment_to_dict(enrollment))
        response = puf.response(NOMINAL_OPERATING_POINT, restored)
        assert np.array_equal(response, enrollment.bits)


class TestMetricsAxioms:
    @settings(max_examples=25)
    @given(
        st.integers(2, 6),
        st.integers(1, 12),
        st.integers(0, 2**16),
    )
    def test_hamming_triangle_inequality(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (rows, cols)).astype(bool)
        # condensed distances satisfy the triangle inequality
        from itertools import combinations

        pairs = list(combinations(range(rows), 2))
        distances = dict(zip(pairs, pairwise_hamming_distances(bits)))

        def d(i, j):
            if i == j:
                return 0
            return distances[(min(i, j), max(i, j))]

        for i in range(rows):
            for j in range(rows):
                for k in range(rows):
                    assert d(i, j) <= d(i, k) + d(k, j)

    @settings(max_examples=25)
    @given(st.integers(1, 32), st.integers(1, 6), st.integers(0, 2**16))
    def test_flip_percent_bounds(self, bits_count, observations, seed):
        rng = np.random.default_rng(seed)
        reference = rng.integers(0, 2, bits_count).astype(bool)
        observed = rng.integers(0, 2, (observations, bits_count)).astype(bool)
        report = bit_flip_report(reference, observed)
        assert 0.0 <= report.flip_percent <= 100.0
        assert report.mean_intra_hd_percent <= report.flip_percent * observations


class TestNistInvariants:
    @settings(max_examples=15)
    @given(st.integers(0, 2**16), st.sampled_from([64, 96, 256, 1024]))
    def test_battery_p_values_in_range(self, seed, length):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, length).astype(bool)
        outcomes, _ = run_battery(bits)
        for outcome in outcomes:
            assert 0.0 <= outcome.p_value <= 1.0

    @settings(max_examples=10)
    @given(st.integers(0, 2**16))
    def test_battery_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 96).astype(bool)
        first, _ = run_battery(bits)
        second, _ = run_battery(bits)
        assert [o.p_value for o in first] == [o.p_value for o in second]


class TestConfigVectorInvariants:
    @given(st.lists(st.booleans(), min_size=1, max_size=20))
    def test_string_round_trip(self, bits):
        vector = ConfigVector(tuple(bits))
        assert ConfigVector.from_string(vector.to_string()) == vector

    @given(st.lists(st.booleans(), min_size=1, max_size=20))
    def test_selected_count_consistency(self, bits):
        vector = ConfigVector(tuple(bits))
        assert vector.selected_count == len(vector.selected_indices)
        assert vector.can_oscillate == (vector.selected_count % 2 == 1)


class TestEnvironmentInvariants:
    @settings(max_examples=25)
    @given(
        st.floats(1.0, 1.5),
        st.floats(1.0, 1.5),
        st.floats(10.0, 80.0),
        st.integers(0, 2**16),
    )
    def test_voltage_monotone_per_device(self, v1, v2, temperature, seed):
        from repro.variation.environment import EnvironmentModel

        model = EnvironmentModel()
        sens = model.sample_sensitivities(5, np.random.default_rng(seed))
        low, high = sorted((v1, v2))
        slow = model.scale_factors(sens, OperatingPoint(low, temperature))
        fast = model.scale_factors(sens, OperatingPoint(high, temperature))
        assert np.all(slow >= fast - 1e-12)
