"""Cache round-trip tests: hits, fingerprint/version misses, corruption."""

import json

import pytest

from repro.pipeline import NO_DATASET_FINGERPRINT, ResultCache, run_pipeline


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", version="1.0.0")


class TestResultCache:
    def test_round_trip(self, cache):
        result = {"value": 1.5, "nested": {"ok": True}}
        cache.store("mytask", "fp", result)
        assert cache.load("mytask", "fp") == result

    def test_miss_on_empty_cache(self, cache):
        assert cache.load("mytask", "fp") is None

    def test_miss_on_different_fingerprint(self, cache):
        cache.store("mytask", "fp-a", {"v": 1})
        assert cache.load("mytask", "fp-b") is None

    def test_miss_on_different_task(self, cache):
        cache.store("task-a", "fp", {"v": 1})
        assert cache.load("task-b", "fp") is None

    def test_miss_after_version_change(self, cache):
        cache.store("mytask", "fp", {"v": 1})
        bumped = ResultCache(cache.root, version="2.0.0")
        assert bumped.load("mytask", "fp") is None
        # and the old version still hits
        assert cache.load("mytask", "fp") == {"v": 1}

    def test_key_is_content_addressed(self, cache):
        key = cache.key("mytask", "fp")
        assert len(key) == 64 and int(key, 16) >= 0
        assert key != cache.key("mytask", "fp2")
        assert key != ResultCache(cache.root, version="2.0.0").key("mytask", "fp")

    def test_corrupted_file_reads_as_miss(self, cache):
        path = cache.store("mytask", "fp", {"v": 1})
        path.write_text("{this is not json")
        assert cache.load("mytask", "fp") is None

    def test_tampered_metadata_reads_as_miss(self, cache):
        path = cache.store("mytask", "fp", {"v": 1})
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "someone-elses-data"
        path.write_text(json.dumps(payload))
        assert cache.load("mytask", "fp") is None

    def test_store_overwrites_atomically(self, cache):
        cache.store("mytask", "fp", {"v": 1})
        cache.store("mytask", "fp", {"v": 2})
        assert cache.load("mytask", "fp") == {"v": 2}
        # no temp files left behind
        assert not list(cache.root.glob("*.tmp.*"))

    def test_concurrent_stores_of_one_key_never_collide(self, cache):
        """Threads of one process share a PID; temp paths must still be unique."""
        from concurrent.futures import ThreadPoolExecutor

        thread_count = 16
        rounds = 20

        def hammer(worker):
            for round_index in range(rounds):
                cache.store("mytask", "fp", {"worker": worker, "round": round_index})

        with ThreadPoolExecutor(max_workers=thread_count) as pool:
            for future in [pool.submit(hammer, w) for w in range(thread_count)]:
                future.result()

        # The surviving entry is one of the stored payloads, intact.
        result = cache.load("mytask", "fp")
        assert result is not None
        assert 0 <= result["worker"] < thread_count
        assert 0 <= result["round"] < rounds
        # and no temp files leaked
        assert not list(cache.root.glob("*.tmp.*"))

    def test_store_sweeps_stale_tmp_files(self, cache):
        import os
        import time

        cache.store("mytask", "fp", {"v": 1})
        orphan = cache.root / "deadbeef.json.tmp.12345.0"
        orphan.write_text("half-written")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        fresh = cache.root / "cafef00d.json.tmp.12345.1"
        fresh.write_text("in-flight write from a live process")
        cache.store("mytask", "fp", {"v": 2})
        assert not orphan.exists()  # orphan from a crashed run was swept
        assert fresh.exists()  # recent temp files are left alone
        assert cache.load("mytask", "fp") == {"v": 2}

    def test_sweep_stale_tmp_returns_removed_count(self, cache):
        import os
        import time

        cache.root.mkdir(parents=True, exist_ok=True)
        for index in range(3):
            orphan = cache.root / f"orphan{index}.json.tmp.1.{index}"
            orphan.write_text("x")
            old = time.time() - 7200
            os.utime(orphan, (old, old))
        assert cache.sweep_stale_tmp() == 3
        assert cache.sweep_stale_tmp() == 0


class TestQuarantine:
    """Unparseable cache entries are renamed ``*.corrupt``, not re-read."""

    def test_zero_byte_entry_quarantined(self, cache):
        path = cache.store("mytask", "fp", {"v": 1})
        path.write_bytes(b"")
        assert cache.load("mytask", "fp") is None
        assert not path.exists()
        assert path.with_name(f"{path.name}.corrupt").exists()

    def test_truncated_entry_quarantined(self, cache):
        path = cache.store("mytask", "fp", {"v": 1})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.load("mytask", "fp") is None
        quarantined = path.with_name(f"{path.name}.corrupt")
        assert quarantined.read_bytes() == data[: len(data) // 2]

    def test_quarantined_entry_is_out_of_the_way(self, cache):
        # after quarantine, a store + load round-trip works again and the
        # .corrupt file is left for post-mortem inspection
        path = cache.store("mytask", "fp", {"v": 1})
        path.write_bytes(b"\x00junk")
        assert cache.load("mytask", "fp") is None
        cache.store("mytask", "fp", {"v": 2})
        assert cache.load("mytask", "fp") == {"v": 2}
        assert len(list(cache.root.glob("*.corrupt"))) == 1

    def test_metadata_mismatch_is_not_quarantined(self, cache):
        # valid JSON with wrong metadata is a plain miss: the bytes are
        # intact, just keyed wrong — nothing to quarantine
        path = cache.store("mytask", "fp", {"v": 1})
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "someone-elses-data"
        path.write_text(json.dumps(payload))
        assert cache.load("mytask", "fp") is None
        assert path.exists()
        assert not list(cache.root.glob("*.corrupt"))

    def test_quarantine_increments_counter(self, cache):
        from repro import obs

        path = cache.store("mytask", "fp", {"v": 1})
        path.write_bytes(b"not json")
        obs.enable_metrics()
        obs.reset_metrics()
        try:
            assert cache.load("mytask", "fp") is None
            counters = obs.snapshot()["counters"]
            assert counters["cache.corrupt_quarantined"] == 1
        finally:
            obs.disable_metrics()
            obs.reset_metrics()

    def test_sweep_removes_stale_corrupt_files(self, cache):
        import os
        import time

        path = cache.store("mytask", "fp", {"v": 1})
        path.write_bytes(b"junk")
        assert cache.load("mytask", "fp") is None
        quarantined = path.with_name(f"{path.name}.corrupt")
        assert quarantined.exists()
        # fresh quarantine files survive the sweep (post-mortem window)...
        assert cache.sweep_stale_tmp() == 0
        assert quarantined.exists()
        # ...stale ones are garbage-collected
        old = time.time() - 7200
        os.utime(quarantined, (old, old))
        assert cache.sweep_stale_tmp() == 1
        assert not quarantined.exists()


class TestPipelineCaching:
    TASKS = ["table5_bits", "sec4e_threshold"]

    def test_warm_run_hits_every_task(self, tmp_path):
        cold = run_pipeline(tasks=self.TASKS, cache_dir=tmp_path, timings=True)
        warm = run_pipeline(tasks=self.TASKS, cache_dir=tmp_path, timings=True)
        assert cold["_pipeline"]["cache_hits"] == 0
        assert warm["_pipeline"]["cache_hits"] == len(self.TASKS)
        for record in warm["_pipeline"]["tasks"]:
            assert record["cache_hit"] is True
            # attempts == 0 is the documented cache-hit sentinel: the task
            # never executed, so no attempt was made (see TaskTiming).
            assert record["attempts"] == 0
            assert record["wall_seconds"] == 0.0
        for record in cold["_pipeline"]["tasks"]:
            assert record["attempts"] >= 1  # computed tasks always attempt

        def strip(s):
            # strip all "_"-prefixed metadata ("_pipeline", "_metrics"):
            # cache counters legitimately differ cold vs warm.
            return {k: v for k, v in s.items() if not k.startswith("_")}

        assert json.dumps(strip(cold), sort_keys=True) == json.dumps(
            strip(warm), sort_keys=True
        )

    def test_dataset_change_misses(self, tmp_path, small_dataset):
        from repro.datasets.vtlike import VTLikeConfig, generate_vt_like

        other = generate_vt_like(
            VTLikeConfig(
                nominal_boards=4,
                swept_boards=1,
                ro_count=64,
                grid_columns=8,
                grid_rows=8,
                seed=77,
            )
        )
        run_pipeline(small_dataset, tasks=["fig3_uniqueness"], cache_dir=tmp_path)
        miss = run_pipeline(
            other, tasks=["fig3_uniqueness"], cache_dir=tmp_path, timings=True
        )
        assert miss["_pipeline"]["cache_hits"] == 0
        # dataset-free tasks hit regardless of the dataset in use
        run_pipeline(small_dataset, tasks=["table5_bits"], cache_dir=tmp_path)
        shared = run_pipeline(
            other, tasks=["table5_bits"], cache_dir=tmp_path, timings=True
        )
        assert shared["_pipeline"]["cache_hits"] == 1

    def test_version_bump_misses_then_recomputes(self, tmp_path):
        old = ResultCache(tmp_path, version="0.9.0")
        run_pipeline(tasks=["table5_bits"], cache_dir=old)
        current = run_pipeline(
            tasks=["table5_bits"], cache_dir=ResultCache(tmp_path), timings=True
        )
        assert current["_pipeline"]["cache_hits"] == 0
        assert current["table5_bits"]["n=3"]["configurable"] == 80

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        first = run_pipeline(tasks=["table5_bits"], cache_dir=tmp_path)
        cache = ResultCache(tmp_path)
        path = cache.path("table5_bits", NO_DATASET_FINGERPRINT)
        assert path.is_file()
        path.write_text("\x00garbage")
        second = run_pipeline(
            tasks=["table5_bits"], cache_dir=tmp_path, timings=True
        )
        assert second["_pipeline"]["cache_hits"] == 0
        assert second["table5_bits"] == first["table5_bits"]
        # the recompute healed the cache entry
        third = run_pipeline(
            tasks=["table5_bits"], cache_dir=tmp_path, timings=True
        )
        assert third["_pipeline"]["cache_hits"] == 1

    def test_failed_tasks_are_not_cached(self, tmp_path):
        from repro.pipeline.registry import _REGISTRY, register_task

        def explode():
            raise RuntimeError("no")

        register_task("cache_fail_probe", explode, uses_dataset=False)
        try:
            run_pipeline(tasks=["cache_fail_probe"], cache_dir=tmp_path)
            cache = ResultCache(tmp_path)
            assert cache.load("cache_fail_probe", NO_DATASET_FINGERPRINT) is None
        finally:
            _REGISTRY.pop("cache_fail_probe", None)
