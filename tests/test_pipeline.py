"""Tests of the declarative experiment pipeline: registry, executor,
parallelism, graceful degradation, and byte-for-byte determinism."""

import json

import pytest

from repro.pipeline import (
    TaskSpec,
    all_tasks,
    get_task,
    resolve_tasks,
    run_pipeline,
    task_names,
)
from repro.pipeline.executor import execute_task
from repro.pipeline.registry import _REGISTRY, register_task

#: Cheap tasks used to exercise the executor without NIST batteries.
#: (sec4e_threshold is ~3s per run; it appears only in the determinism
#: tests, where re-running it is the point.)
FAST_TASKS = ["fig3_uniqueness", "table5_bits"]


def _strip_meta(summary: dict) -> dict:
    # All "_"-prefixed keys are run metadata ("_pipeline", "_metrics"),
    # never experiment results.
    return {k: v for k, v in summary.items() if not k.startswith("_")}


def _timings_by_task(meta: dict) -> dict:
    """Index the timing records by task name (unique names assumed)."""
    return {record["task"]: record for record in meta["tasks"]}


def _dumps(summary: dict) -> str:
    return json.dumps(_strip_meta(summary), sort_keys=True)


@pytest.fixture
def scratch_task():
    """Register a disposable task; deregister on teardown."""
    registered = []

    def _register(name, fn, **kwargs):
        register_task(name, fn, **kwargs)
        registered.append(name)
        return get_task(name)

    yield _register
    for name in registered:
        _REGISTRY.pop(name, None)


class TestRegistry:
    def test_every_runner_section_is_registered(self):
        expected = [
            "table1_nist_case1",
            "table2_nist_case2",
            "nist_raw",
            "fig3_uniqueness",
            "table3_configs_case1",
            "table4_configs_case2",
            "fig4_voltage",
            "fig4_temperature",
            "table5_bits",
            "sec4e_threshold",
            "ablation_distiller",
            "ablation_attacks",
            "ecc_cost",
        ]
        assert task_names() == expected

    def test_dataset_free_tasks_flagged(self):
        assert not get_task("table5_bits").uses_dataset
        assert not get_task("sec4e_threshold").uses_dataset
        assert get_task("table1_nist_case1").uses_dataset

    def test_specs_have_descriptions(self):
        for spec in all_tasks():
            assert isinstance(spec, TaskSpec)
            assert spec.description, spec.name

    def test_unknown_task_raises_helpfully(self):
        with pytest.raises(KeyError, match="table5_bits"):
            get_task("nope")
        with pytest.raises(KeyError):
            resolve_tasks(["table5_bits", "nope"])

    def test_resolve_preserves_registration_order(self):
        specs = resolve_tasks(["sec4e_threshold", "fig3_uniqueness"])
        assert [s.name for s in specs] == ["fig3_uniqueness", "sec4e_threshold"]

    def test_duplicate_registration_rejected(self, scratch_task):
        scratch_task("dup_task", lambda: {})
        with pytest.raises(ValueError, match="already registered"):
            register_task("dup_task", lambda: {})

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_pipeline(tasks=["table5_bits"], jobs=0)


class TestExecutor:
    def test_summary_matches_task_selection_and_order(self, small_dataset):
        summary = run_pipeline(
            small_dataset, tasks=["table5_bits", "fig3_uniqueness"]
        )
        assert list(summary) == ["dataset", "fig3_uniqueness", "table5_bits"]

    def test_dataset_name_recorded(self, small_dataset):
        summary = run_pipeline(small_dataset, tasks=["fig3_uniqueness"])
        assert summary["dataset"] == small_dataset.name

    def test_dataset_free_run_skips_dataset(self):
        summary = run_pipeline(tasks=["table5_bits"])
        assert summary["dataset"] is None
        assert summary["table5_bits"]["n=3"]["matches_paper"] is True

    def test_parallel_equals_serial(self, small_dataset):
        serial = run_pipeline(small_dataset, jobs=1, tasks=FAST_TASKS)
        parallel = run_pipeline(small_dataset, jobs=3, tasks=FAST_TASKS)
        assert _dumps(serial) == _dumps(parallel)

    def test_results_are_plain_json_types(self, small_dataset):
        summary = run_pipeline(small_dataset, tasks=FAST_TASKS)
        # a straight dumps (no default hook) succeeds only for native types
        json.dumps(summary)

    def test_timings_block(self, small_dataset):
        summary = run_pipeline(
            small_dataset, jobs=2, tasks=FAST_TASKS, timings=True
        )
        meta = summary["_pipeline"]
        assert meta["jobs"] == 2
        assert meta["cache_hits"] == 0
        assert meta["failures"] == 0
        assert isinstance(meta["tasks"], list)
        assert {r["task"] for r in meta["tasks"]} == set(FAST_TASKS)
        for record in meta["tasks"]:
            assert record["wall_seconds"] >= 0.0
            assert record["attempts"] == 1
            assert record["process"] > 0
            assert record["cache_hit"] is False
        assert meta["total_wall_seconds"] >= max(
            r["wall_seconds"] for r in meta["tasks"]
        ) - 1e-6

    def test_timings_absent_by_default(self, small_dataset):
        assert "_pipeline" not in run_pipeline(
            small_dataset, tasks=["table5_bits"]
        )

    def test_duplicate_task_names_survive(self):
        # "tasks" must serialize as a list: a name-keyed dict would silently
        # drop all but one record if a task name ever repeated (e.g. a
        # future re-run-task feature), under-reporting work done.
        from repro.pipeline.timing import PipelineTimings, TaskTiming

        timings = PipelineTimings(jobs=1)
        timings.tasks.append(
            TaskTiming(task="twin", wall_seconds=0.1, process=1, attempts=1)
        )
        timings.tasks.append(
            TaskTiming(task="twin", wall_seconds=0.2, process=1, attempts=2)
        )
        doc = timings.as_dict()
        assert isinstance(doc["tasks"], list)
        assert [r["task"] for r in doc["tasks"]] == ["twin", "twin"]
        assert [r["attempts"] for r in doc["tasks"]] == [1, 2]
        # and the round-trip through JSON keeps both records
        assert len(json.loads(json.dumps(doc))["tasks"]) == 2


class TestGracefulDegradation:
    def test_failed_task_yields_error_entry(self, scratch_task):
        def explode():
            raise RuntimeError("boom")

        scratch_task("always_fails", explode, uses_dataset=False)
        summary = run_pipeline(tasks=["always_fails", "table5_bits"], timings=True)
        entry = summary["always_fails"]
        assert entry["error"] == "RuntimeError: boom"
        assert entry["attempts"] == 2
        # the cause survives the retry: exception type and full traceback
        assert entry["error_type"] == "RuntimeError"
        assert "RuntimeError: boom" in entry["traceback"]
        assert "explode" in entry["traceback"]
        # the healthy task still ran to completion
        assert summary["table5_bits"]["n=3"]["configurable"] == 80
        assert summary["_pipeline"]["failures"] == 1
        # every failed attempt is on the record
        by_task = _timings_by_task(summary["_pipeline"])
        history = by_task["always_fails"]["failure_history"]
        assert [h["attempt"] for h in history] == [1, 2]
        assert all(h["kind"] == "exception" for h in history)
        assert by_task["table5_bits"]["failure_history"] == []

    def test_retry_once_recovers_flaky_task(self, scratch_task):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return {"ok": True}

        scratch_task("flaky_once", flaky, uses_dataset=False)
        summary = run_pipeline(tasks=["flaky_once"], timings=True)
        assert summary["flaky_once"] == {"ok": True}
        by_task = _timings_by_task(summary["_pipeline"])
        assert by_task["flaky_once"]["attempts"] == 2

    def test_execute_task_never_raises(self, scratch_task):
        def explode():
            raise ValueError("bad")

        scratch_task("exec_fails", explode, uses_dataset=False)
        payload = execute_task("exec_fails", None)
        assert payload["error"] == "ValueError: bad"
        assert payload["result"] is None
        assert payload["attempts"] == 2
        assert payload["wall_seconds"] >= 0.0


class TestDeterminism:
    """Running any task twice with the same dataset is byte-identical."""

    @pytest.mark.parametrize("task", FAST_TASKS + ["sec4e_threshold", "ecc_cost"])
    def test_task_reruns_byte_identical(self, small_dataset, task):
        first = run_pipeline(small_dataset, tasks=[task])
        second = run_pipeline(small_dataset, tasks=[task])
        assert json.dumps(first, sort_keys=True).encode() == json.dumps(
            second, sort_keys=True
        ).encode()

    def test_fresh_process_matches_in_process(self, small_dataset):
        # jobs=2 computes in worker processes with fresh interpreter state;
        # any hidden unseeded RNG (the old DelayMeasurer default) shows up
        # as a mismatch against the in-process run.
        serial = run_pipeline(small_dataset, jobs=1, tasks=["sec4e_threshold"])
        forked = run_pipeline(small_dataset, jobs=2, tasks=["sec4e_threshold"])
        assert _dumps(serial) == _dumps(forked)

    def test_wrapper_matches_pipeline(self, small_dataset):
        # run_all_experiments is a thin wrapper; single cheap task subset
        # checked here, the full-summary equivalence lives in test_runner.
        from repro.experiments.runner import run_all_experiments  # noqa: F401

        summary = run_pipeline(small_dataset, tasks=["fig3_uniqueness"])
        again = run_pipeline(small_dataset, tasks=["fig3_uniqueness"])
        assert summary == again


class TestDatasetFingerprint:
    def test_stable_across_equal_generations(self):
        from repro.datasets.vtlike import VTLikeConfig, generate_vt_like

        config = dict(
            nominal_boards=2,
            swept_boards=1,
            ro_count=64,
            grid_columns=8,
            grid_rows=8,
            seed=42,
        )
        a = generate_vt_like(VTLikeConfig(**config))
        b = generate_vt_like(VTLikeConfig(**config))
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_data_changes(self):
        from repro.datasets.vtlike import VTLikeConfig, generate_vt_like

        base = VTLikeConfig(
            nominal_boards=2,
            swept_boards=1,
            ro_count=64,
            grid_columns=8,
            grid_rows=8,
            seed=42,
        )
        other = VTLikeConfig(
            nominal_boards=2,
            swept_boards=1,
            ro_count=64,
            grid_columns=8,
            grid_rows=8,
            seed=43,
        )
        assert (
            generate_vt_like(base).fingerprint()
            != generate_vt_like(other).fingerprint()
        )

    def test_sensitive_to_single_delay_perturbation(self, small_dataset):
        import copy

        clone = copy.deepcopy(small_dataset)
        board = clone.boards[0]
        op = board.corners[0]
        board.delays[op] = board.delays[op].copy()
        board.delays[op][0] *= 1.0 + 1e-12
        assert clone.fingerprint() != small_dataset.fingerprint()
