"""Sampling profiler: collapsed-stack shape, lifecycle, pipeline hookup."""

from __future__ import annotations

import re
import threading
import time

import pytest

from repro.obs.profiler import SamplingProfiler

#: ``frame;frame;frame count`` — the collapsed-stack line contract.
_COLLAPSED_LINE = re.compile(r"^[^ ;]+(?:;[^ ;]+)* \d+$")


def _busy_beacon(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(2000))


class TestSampling:
    def test_captures_a_running_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_beacon, args=(stop,))
        worker.start()
        try:
            with SamplingProfiler(interval_s=0.002) as profiler:
                time.sleep(0.15)
        finally:
            stop.set()
            worker.join()
        collapsed = profiler.collapsed()
        assert profiler.stats()["samples"] > 0
        assert "_busy_beacon" in collapsed

    def test_collapsed_format(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_beacon, args=(stop,))
        worker.start()
        try:
            with SamplingProfiler(interval_s=0.002) as profiler:
                time.sleep(0.1)
        finally:
            stop.set()
            worker.join()
        lines = profiler.collapsed().splitlines()
        assert lines
        for line in lines:
            assert _COLLAPSED_LINE.match(line), line
        # Heaviest stack first.
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)
        # Frames are module-qualified and root-first: the beacon thread's
        # stack must *end* at the beacon, not start there.
        beacon = next(line for line in lines if "_busy_beacon" in line)
        stack = beacon.rsplit(" ", 1)[0].split(";")
        assert stack[-1].endswith("_busy_beacon")

    def test_write(self, tmp_path):
        with SamplingProfiler(interval_s=0.002) as profiler:
            time.sleep(0.05)
        path = profiler.write(tmp_path / "profile.collapsed")
        assert path.exists()
        assert path.read_text() == profiler.collapsed()

    def test_excludes_its_own_sampler_thread(self):
        with SamplingProfiler(interval_s=0.002) as profiler:
            time.sleep(0.1)
        assert "_sample_once" not in profiler.collapsed()


class TestLifecycle:
    def test_double_start_rejected(self):
        profiler = SamplingProfiler(interval_s=0.01).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval_s=0.01)
        profiler.stop()  # never started: no-op
        profiler.start()
        profiler.stop()
        profiler.stop()

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval_s"):
            SamplingProfiler(interval_s=0.0)


class TestPipelineHookup:
    def test_run_pipeline_profile_writes_collapsed_stacks(self, tmp_path):
        from repro.pipeline.executor import run_pipeline

        profile_path = tmp_path / "run.collapsed"
        run_pipeline(tasks=["table1_nist_case1"], profile=profile_path)
        assert profile_path.exists()
        content = profile_path.read_text()
        assert content.strip(), "profile of a real run must not be empty"
        for line in content.splitlines():
            assert _COLLAPSED_LINE.match(line), line
        assert "repro." in content
