"""API-surface tests: the documented public interface exists and resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.variation",
    "repro.silicon",
    "repro.core",
    "repro.baselines",
    "repro.distiller",
    "repro.nist",
    "repro.metrics",
    "repro.datasets",
    "repro.crypto",
    "repro.attacks",
    "repro.analysis",
    "repro.experiments",
]


class TestPublicApi:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_entries_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), package_name
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name}"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_module_docstrings_present(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, package_name

    def test_version_string(self):
        import repro

        assert repro.__version__ == "1.2.0"

    def test_readme_quickstart_names_exist(self):
        # The names used in README's quickstart snippet.
        import repro

        for name in (
            "FabricationProcess",
            "ChipROPUF",
            "OperatingPoint",
            "BoardROPUF",
            "Authenticator",
            "KeyGenerator",
            "FuzzyExtractor",
            "BCHCode",
            "PolynomialDistiller",
            "evaluate_sequences",
        ):
            assert hasattr(repro, name), name

    def test_public_functions_have_docstrings(self):
        import inspect

        import repro.core as core

        for name in core.__all__:
            obj = getattr(core, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"repro.core.{name} lacks a docstring"


class TestCornersModule:
    def test_grid_shapes(self):
        from repro.variation.corners import (
            TEMPERATURES,
            VOLTAGES,
            full_grid,
            temperature_corners,
            voltage_corners,
        )

        assert len(VOLTAGES) == 5 and len(TEMPERATURES) == 5
        assert len(full_grid()) == 25
        assert len(voltage_corners()) == 5
        assert len(temperature_corners()) == 5

    def test_nominal_in_every_sweep(self):
        from repro.variation.corners import (
            NOMINAL_OPERATING_POINT,
            full_grid,
            temperature_corners,
            voltage_corners,
        )

        assert NOMINAL_OPERATING_POINT in voltage_corners()
        assert NOMINAL_OPERATING_POINT in temperature_corners()
        assert NOMINAL_OPERATING_POINT in full_grid()

    def test_sweeps_hold_other_axis_fixed(self):
        from repro.variation.corners import temperature_corners, voltage_corners

        assert len({op.temperature for op in voltage_corners()}) == 1
        assert len({op.voltage for op in temperature_corners()}) == 1
