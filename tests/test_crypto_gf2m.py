"""Unit tests of GF(2^m) arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.gf2m import GF2m, PRIMITIVE_POLYNOMIALS


@pytest.fixture(scope="module")
def gf16():
    return GF2m(4)


class TestConstruction:
    def test_default_polynomials_are_primitive(self):
        for m in PRIMITIVE_POLYNOMIALS:
            GF2m(m)  # table build verifies primitivity

    def test_rejects_non_primitive_polynomial(self):
        # x^4 + 1 is not even irreducible.
        with pytest.raises(ValueError):
            GF2m(4, primitive_polynomial=0b10001)

    def test_rejects_wrong_degree(self):
        with pytest.raises(ValueError, match="degree"):
            GF2m(4, primitive_polynomial=0b1011)

    def test_rejects_out_of_range_m(self):
        with pytest.raises(ValueError):
            GF2m(1)

    def test_order_and_size(self, gf16):
        assert gf16.order == 15
        assert gf16.size == 16


class TestArithmetic:
    def test_add_is_xor(self, gf16):
        assert gf16.add(0b1010, 0b0110) == 0b1100

    def test_multiply_by_zero_and_one(self, gf16):
        assert gf16.multiply(7, 0) == 0
        assert gf16.multiply(0, 7) == 0
        assert gf16.multiply(7, 1) == 7

    def test_known_product_gf16(self, gf16):
        # alpha^4 = alpha + 1 (= 3) with x^4 + x + 1.
        alpha = 2
        assert gf16.power(alpha, 4) == 3

    def test_inverse_round_trip(self, gf16):
        for a in range(1, 16):
            assert gf16.multiply(a, gf16.inverse(a)) == 1

    def test_zero_inverse_rejected(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inverse(0)

    def test_divide(self, gf16):
        for a in range(1, 16):
            for b in range(1, 16):
                assert gf16.multiply(gf16.divide(a, b), b) == a

    def test_element_range_checked(self, gf16):
        with pytest.raises(ValueError):
            gf16.multiply(16, 1)
        with pytest.raises(ValueError):
            gf16.add(-1, 0)

    def test_alpha_powers_cycle(self, gf16):
        assert gf16.alpha_power(0) == 1
        assert gf16.alpha_power(15) == 1
        assert gf16.alpha_power(-1) == gf16.alpha_power(14)

    def test_log_exp_inverse(self, gf16):
        for a in range(1, 16):
            assert gf16.alpha_power(gf16.log(a)) == a

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    def test_multiplication_associative(self, a, b, c):
        gf = GF2m(4)
        assert gf.multiply(gf.multiply(a, b), c) == gf.multiply(
            a, gf.multiply(b, c)
        )

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    def test_distributive(self, a, b, c):
        gf = GF2m(4)
        left = gf.multiply(a, gf.add(b, c))
        right = gf.add(gf.multiply(a, b), gf.multiply(a, c))
        assert left == right


class TestPolynomials:
    def test_poly_eval_constant(self, gf16):
        assert gf16.poly_eval([5], 7) == 5

    def test_poly_eval_linear(self, gf16):
        # p(x) = 3 + 2x at x = alpha: 3 XOR (2*2 = 4) = 7
        assert gf16.poly_eval([3, 2], 2) == 7

    def test_poly_multiply_matches_eval(self, gf16):
        rng = np.random.default_rng(0)
        a = [int(v) for v in rng.integers(0, 16, 4)]
        b = [int(v) for v in rng.integers(0, 16, 3)]
        product = gf16.poly_multiply(a, b)
        for x in range(16):
            assert gf16.poly_eval(product, x) == gf16.multiply(
                gf16.poly_eval(a, x), gf16.poly_eval(b, x)
            )

    def test_minimal_polynomial_of_alpha(self, gf16):
        # alpha's minimal polynomial is the field's primitive polynomial.
        minimal = gf16.minimal_polynomial(2)
        as_int = sum(c << i for i, c in enumerate(minimal))
        assert as_int == PRIMITIVE_POLYNOMIALS[4]

    def test_minimal_polynomial_has_element_as_root(self, gf16):
        for element in range(1, 16):
            minimal = gf16.minimal_polynomial(element)
            assert gf16.poly_eval(minimal, element) == 0

    def test_minimal_polynomial_of_one(self, gf16):
        assert gf16.minimal_polynomial(1) == [1, 1]  # x + 1

    def test_minimal_polynomial_of_zero(self, gf16):
        assert gf16.minimal_polynomial(0) == [0, 1]  # x
