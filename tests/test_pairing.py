"""Unit tests of ring allocation (Table V's carve-up rule)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pairing import RingAllocation, allocate_rings, rings_per_board


class TestRingsPerBoard:
    @pytest.mark.parametrize(
        "stage_count,expected_rings",
        [(3, 160), (5, 96), (7, 64), (9, 48)],
    )
    def test_paper_table5_ring_counts(self, stage_count, expected_rings):
        assert rings_per_board(512, stage_count) == expected_rings

    def test_rounds_to_multiple(self):
        assert rings_per_board(100, 3, multiple=16) == 32
        assert rings_per_board(100, 3, multiple=2) == 32  # 33 -> 32
        assert rings_per_board(100, 3, multiple=1) == 33

    def test_zero_when_board_too_small(self):
        assert rings_per_board(10, 3) == 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            rings_per_board(-1, 3)
        with pytest.raises(ValueError):
            rings_per_board(10, 0)
        with pytest.raises(ValueError):
            rings_per_board(10, 3, multiple=0)

    @given(st.integers(0, 4096), st.integers(1, 32))
    def test_allocation_fits_board(self, units, n):
        rings = rings_per_board(units, n)
        assert rings * n <= units
        assert rings % 16 == 0


class TestRingAllocation:
    def test_counts(self):
        alloc = RingAllocation(stage_count=5, ring_count=96)
        assert alloc.unit_count == 480
        assert alloc.pair_count == 48
        assert alloc.group_of_8_count == 12

    def test_consecutive_ring_units(self):
        alloc = RingAllocation(stage_count=3, ring_count=4)
        assert alloc.ring_units(0).tolist() == [0, 1, 2]
        assert alloc.ring_units(3).tolist() == [9, 10, 11]

    def test_interleaved_ring_units(self):
        alloc = RingAllocation(stage_count=3, ring_count=4, layout="interleaved")
        # pair 0 occupies units 0..5: top even offsets, bottom odd offsets
        assert alloc.ring_units(0).tolist() == [0, 2, 4]
        assert alloc.ring_units(1).tolist() == [1, 3, 5]
        assert alloc.ring_units(2).tolist() == [6, 8, 10]
        assert alloc.ring_units(3).tolist() == [7, 9, 11]

    def test_layouts_cover_same_units(self):
        for layout in ("consecutive", "interleaved"):
            alloc = RingAllocation(stage_count=5, ring_count=8, layout=layout)
            all_units = np.concatenate(
                [alloc.ring_units(r) for r in range(alloc.ring_count)]
            )
            assert sorted(all_units.tolist()) == list(range(alloc.unit_count))

    def test_pair_rings(self):
        alloc = RingAllocation(stage_count=3, ring_count=8)
        assert alloc.pair_rings(0) == (0, 1)
        assert alloc.pair_rings(3) == (6, 7)
        with pytest.raises(ValueError):
            alloc.pair_rings(4)

    def test_group_rings(self):
        alloc = RingAllocation(stage_count=3, ring_count=16)
        assert alloc.group_rings(1).tolist() == list(range(8, 16))
        with pytest.raises(ValueError):
            alloc.group_rings(2)

    def test_ring_bounds(self):
        alloc = RingAllocation(stage_count=3, ring_count=2)
        with pytest.raises(ValueError):
            alloc.ring_units(2)

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            RingAllocation(stage_count=3, ring_count=2, layout="diagonal")

    def test_interleaved_needs_even_rings(self):
        with pytest.raises(ValueError, match="even"):
            RingAllocation(stage_count=3, ring_count=3, layout="interleaved")

    def test_ring_delay_matrix_consecutive(self):
        alloc = RingAllocation(stage_count=2, ring_count=2)
        matrix = alloc.ring_delay_matrix(np.arange(6.0))
        assert matrix.tolist() == [[0.0, 1.0], [2.0, 3.0]]  # spare unit dropped

    def test_ring_delay_matrix_interleaved(self):
        alloc = RingAllocation(stage_count=2, ring_count=2, layout="interleaved")
        matrix = alloc.ring_delay_matrix(np.arange(4.0))
        assert matrix.tolist() == [[0.0, 2.0], [1.0, 3.0]]

    def test_ring_delay_matrix_too_short(self):
        alloc = RingAllocation(stage_count=4, ring_count=4)
        with pytest.raises(ValueError, match="at least"):
            alloc.ring_delay_matrix(np.arange(10.0))

    def test_allocate_rings_helper(self):
        alloc = allocate_rings(512, 7, layout="interleaved")
        assert alloc.ring_count == 64
        assert alloc.layout == "interleaved"
