"""Tests of the spatially-correlated mismatch option."""

import numpy as np
import pytest

from repro.variation.process import (
    ProcessParameters,
    ProcessVariationModel,
    _correlate_spatially,
)


def grid_coords(k=400):
    rng = np.random.default_rng(0)
    return rng.uniform(-1.0, 1.0, (k, 2))


class TestCorrelateSpatially:
    def test_preserves_target_sigma(self, rng):
        coords = grid_coords()
        values = rng.normal(0, 0.015, len(coords))
        smoothed = _correlate_spatially(values, coords, 0.2, 0.015)
        assert np.std(smoothed) == pytest.approx(0.015, rel=1e-9)

    def test_neighbours_become_correlated(self, rng):
        coords = grid_coords(800)
        values = rng.normal(0, 1.0, len(coords))
        smoothed = _correlate_spatially(values, coords, 0.3, 1.0)
        # Nearby points (distance < 0.1) should have similar values.
        diffs = coords[:, None, :] - coords[None, :, :]
        distances = np.sqrt((diffs**2).sum(axis=2))
        near = (distances > 0) & (distances < 0.1)
        pairs = np.argwhere(near)[:2000]
        products = smoothed[pairs[:, 0]] * smoothed[pairs[:, 1]]
        correlation = np.mean(products) / np.var(smoothed)
        assert correlation > 0.5

    def test_long_length_approaches_constant(self, rng):
        coords = grid_coords(100)
        values = rng.normal(0, 1.0, 100)
        smoothed = _correlate_spatially(values, coords, 50.0, 1.0)
        # Nearly flat before rescaling; after rescaling, the *shape* is
        # flat: correlation between any two points ~ 1.
        assert np.corrcoef(smoothed, np.ones_like(smoothed) * smoothed[0])[0, 1] != 0


class TestProcessModelCorrelation:
    def test_zero_length_is_default_path(self, rng):
        coords = grid_coords(64)
        model = ProcessVariationModel(ProcessParameters(correlation_length=0.0))
        field = model.sample_field(rng)
        delays = model.sample_relative_delays(coords, field, 0.0, rng)
        assert delays.shape == (64,)

    def test_correlated_delays_smoother(self):
        coords = grid_coords(400)
        # order coords by x to measure neighbour similarity along a line
        order = np.argsort(coords[:, 0] + 1e-3 * coords[:, 1])

        def neighbour_variation(correlation_length, seed=5):
            model = ProcessVariationModel(
                ProcessParameters(
                    sigma_systematic=0.0,
                    ripple_sigma=0.0,
                    sigma_board=0.0,
                    correlation_length=correlation_length,
                )
            )
            rng = np.random.default_rng(seed)
            field = model.sample_field(rng)
            delays = model.sample_relative_delays(coords, field, 0.0, rng)
            return float(np.mean(np.abs(np.diff(delays[order]))))

        assert neighbour_variation(0.3) < neighbour_variation(0.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ProcessParameters(correlation_length=-0.1)
