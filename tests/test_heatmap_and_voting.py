"""Tests of the ASCII heatmap helper and majority-vote responses."""

import numpy as np
import pytest

from repro.analysis.heatmap import ascii_heatmap, board_heatmap
from repro.core.pairing import RingAllocation
from repro.core.puf import BoardROPUF
from repro.variation.environment import NOMINAL_OPERATING_POINT
from repro.variation.noise import GaussianNoise


class TestAsciiHeatmap:
    def test_shape(self):
        text = ascii_heatmap(np.arange(12.0).reshape(3, 4))
        lines = text.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 8 for line in lines)  # 2 chars per cell

    def test_extremes_use_ramp_ends(self):
        text = ascii_heatmap(np.array([[0.0, 1.0]]))
        assert text[0] == " "
        assert text[-1] == "@"

    def test_constant_array(self):
        text = ascii_heatmap(np.ones((2, 2)))
        assert set(text.replace("\n", "")) == {" "}

    def test_gradient_is_monotone(self):
        text = ascii_heatmap(np.linspace(0, 1, 10).reshape(1, 10), width=1)
        ramp = " .:-=+*#%@"
        positions = [ramp.index(c) for c in text]
        assert positions == sorted(positions)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones(4))
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones((2, 2)), width=0)


class TestBoardHeatmap:
    def test_grid_reconstruction(self):
        from repro.silicon.geometry import grid_coordinates

        coords = grid_coordinates(4, 3)
        delays = coords[:, 0]  # horizontal gradient
        text = board_heatmap(delays, coords)
        lines = text.splitlines()
        assert len(lines) == 3
        # each row should brighten left to right
        for line in lines:
            assert line[0] == " " and line[-1] == "@"

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            board_heatmap(np.ones(4), np.ones((3, 2)))


class TestMajorityVoting:
    def make_noisy_puf(self, seed=0, sigma=0.02):
        data_rng = np.random.default_rng(seed)
        delays = data_rng.normal(1.0, 0.02, 300)
        allocation = RingAllocation(stage_count=3, ring_count=100)
        return BoardROPUF(
            delay_provider=lambda op: delays,
            allocation=allocation,
            method="traditional",
            response_noise=GaussianNoise(relative_sigma=sigma),
            rng=np.random.default_rng(seed + 1),
        )

    def test_voting_reduces_flips(self):
        puf = self.make_noisy_puf()
        enrollment = puf.enroll()
        single_flips = 0
        voted_flips = 0
        for _ in range(10):
            single = puf.response(NOMINAL_OPERATING_POINT, enrollment)
            voted = puf.response_voted(NOMINAL_OPERATING_POINT, enrollment, votes=15)
            single_flips += int(np.sum(single != enrollment.bits))
            voted_flips += int(np.sum(voted != enrollment.bits))
        assert voted_flips < single_flips

    def test_votes_must_be_odd(self):
        puf = self.make_noisy_puf()
        enrollment = puf.enroll()
        with pytest.raises(ValueError):
            puf.response_voted(NOMINAL_OPERATING_POINT, enrollment, votes=4)
        with pytest.raises(ValueError):
            puf.response_voted(NOMINAL_OPERATING_POINT, enrollment, votes=0)

    def test_noiseless_voting_is_exact(self, rng):
        delays = rng.normal(1.0, 0.02, 30)
        allocation = RingAllocation(stage_count=3, ring_count=10)
        puf = BoardROPUF(delay_provider=lambda op: delays, allocation=allocation)
        enrollment = puf.enroll()
        voted = puf.response_voted(NOMINAL_OPERATING_POINT, enrollment, votes=3)
        assert np.array_equal(voted, enrollment.bits)
