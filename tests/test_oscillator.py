"""Tests of the event-driven ring-oscillator simulator."""

import numpy as np
import pytest

from repro.core.config_vector import ConfigVector
from repro.core.ring import ConfigurableRO
from repro.silicon.oscillator import (
    RingOscillatorSimulator,
    simulate_configured_ring,
)


@pytest.fixture()
def simulator():
    return RingOscillatorSimulator(
        stage_delays=np.array([100e-12, 120e-12, 110e-12])
    )


class TestRingOscillatorSimulator:
    def test_nominal_frequency_formula(self, simulator):
        assert simulator.lap_time == pytest.approx(330e-12)
        assert simulator.nominal_frequency == pytest.approx(1.0 / 660e-12)

    def test_noiseless_counter_matches_analytic(self, simulator, rng):
        window = 1e-6
        measured = simulator.measure_frequency(window, rng)
        quantisation = 1.0 / (2.0 * window)
        assert abs(measured - simulator.nominal_frequency) <= quantisation

    def test_longer_window_measures_finer(self, simulator, rng):
        errors = []
        for window in (1e-7, 1e-5):
            measured = simulator.measure_frequency(window, rng)
            errors.append(abs(measured - simulator.nominal_frequency))
        assert errors[1] < errors[0]

    def test_toggle_times_sorted_within_window(self, simulator, rng):
        times = simulator.toggle_times(1e-8, rng)
        assert np.all(np.diff(times) > 0)
        assert times[-1] <= 1e-8

    def test_jitter_spreads_repeated_measurements(self):
        jittery = RingOscillatorSimulator(
            stage_delays=np.full(5, 100e-12), jitter_sigma=2e-12
        )
        clean = RingOscillatorSimulator(stage_delays=np.full(5, 100e-12))
        rng = np.random.default_rng(0)
        window = 2e-7
        jittery_counts = [jittery.count_toggles(window, rng) for _ in range(50)]
        clean_counts = [clean.count_toggles(window, rng) for _ in range(50)]
        assert np.std(jittery_counts) > np.std(clean_counts)

    def test_jitter_keeps_mean_frequency(self):
        jittery = RingOscillatorSimulator(
            stage_delays=np.full(5, 100e-12), jitter_sigma=1e-12
        )
        rng = np.random.default_rng(1)
        measurements = [
            jittery.measure_frequency(1e-6, rng) for _ in range(40)
        ]
        assert np.mean(measurements) == pytest.approx(
            jittery.nominal_frequency, rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RingOscillatorSimulator(stage_delays=np.array([]))
        with pytest.raises(ValueError):
            RingOscillatorSimulator(stage_delays=np.array([1e-12, -1e-12]))
        with pytest.raises(ValueError):
            RingOscillatorSimulator(
                stage_delays=np.array([1e-12]), jitter_sigma=-1.0
            )
        with pytest.raises(ValueError):
            RingOscillatorSimulator(
                stage_delays=np.array([1e-12])
            ).toggle_times(0.0, np.random.default_rng(0))


class TestSimulateConfiguredRing:
    def test_matches_analytic_ring_frequency(self, chip, rng):
        ring = ConfigurableRO(chip=chip, unit_indices=np.arange(5))
        config = ConfigVector.from_string("11100")
        simulator = simulate_configured_ring(ring, config)
        analytic = ring.frequency(config)
        assert simulator.nominal_frequency == pytest.approx(analytic, rel=1e-12)
        window = 5e-6
        measured = simulator.measure_frequency(window, rng)
        assert abs(measured - analytic) <= 1.0 / (2.0 * window)

    def test_even_configuration_rejected(self, chip):
        ring = ConfigurableRO(chip=chip, unit_indices=np.arange(4))
        with pytest.raises(ValueError, match="even"):
            simulate_configured_ring(ring, ConfigVector.from_string("1100"))

    def test_length_mismatch_rejected(self, chip):
        ring = ConfigurableRO(chip=chip, unit_indices=np.arange(4))
        with pytest.raises(ValueError, match="length"):
            simulate_configured_ring(ring, ConfigVector.from_string("111"))

    def test_bypass_stages_still_contribute_delay(self, chip):
        ring = ConfigurableRO(chip=chip, unit_indices=np.arange(5))
        all_on = simulate_configured_ring(ring, ConfigVector.from_string("11111"))
        one_on = simulate_configured_ring(ring, ConfigVector.from_string("10000"))
        # Bypassed stages contribute d0 > 0, so the one-inverter ring is
        # faster but not 5x faster.
        assert one_on.nominal_frequency > all_on.nominal_frequency
        assert one_on.nominal_frequency < 5.0 * all_on.nominal_frequency
