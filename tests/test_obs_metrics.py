"""Tests of the metrics registry: recording, snapshots, merging, and the
counters the instrumented engines emit."""

import numpy as np
import pytest

from repro import obs
from repro.core.measurement import (
    ENROLL_DRAW_ORDER,
    DelayMeasurer,
    measure_ddiffs_leave_one_out_batch,
)
from repro.core.ring import ConfigurableRO
from repro.core.selection import select_case1
from repro.core.selection_batch import select_case1_batch
from repro.silicon.fabrication import FabricationProcess


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable_metrics()
    obs.reset_metrics()
    yield
    obs.disable_metrics()
    obs.reset_metrics()


class TestRegistry:
    def test_disabled_records_nothing(self):
        obs.counter_add("cache.hits")
        obs.gauge_set("g", 1.0)
        obs.histogram_observe("h", 1.0)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_counter_accumulates(self):
        obs.enable_metrics()
        obs.counter_add("cache.hits")
        obs.counter_add("cache.hits", 2.5)
        assert obs.snapshot()["counters"]["cache.hits"] == 3.5

    def test_gauge_keeps_last_value(self):
        obs.enable_metrics()
        obs.gauge_set("g", 1.0)
        obs.gauge_set("g", 0.25)
        assert obs.snapshot()["gauges"]["g"] == 0.25

    def test_histogram_aggregates(self):
        obs.enable_metrics()
        for value in (4.0, 1.0, 7.0):
            obs.histogram_observe("h", value)
        histogram = obs.snapshot()["histograms"]["h"]
        sketch_state = histogram.pop("sketch")
        assert histogram == {
            "count": 3, "total": 12.0, "min": 1.0, "max": 7.0,
        }
        assert sketch_state["count"] == 3
        assert sketch_state["min"] == 1.0
        assert sketch_state["max"] == 7.0

    def test_histogram_quantiles_live(self):
        obs.enable_metrics()
        for value in range(1, 101):
            obs.histogram_observe("h", float(value))
        quantiles = obs.histogram_quantiles("h")
        assert set(quantiles) == {"p50", "p90", "p99", "max"}
        assert quantiles["p50"] == pytest.approx(50.0, rel=0.02)
        assert quantiles["p99"] == pytest.approx(99.0, rel=0.02)
        assert quantiles["max"] == 100.0
        assert obs.histogram_quantiles("never.observed") is None

    def test_snapshot_is_schema_tagged_and_detached(self):
        obs.enable_metrics()
        obs.counter_add("c")
        snap = obs.snapshot()
        assert snap["schema"] == obs.METRICS_SCHEMA
        snap["counters"]["c"] = 99.0  # mutating a snapshot is safe
        assert obs.snapshot()["counters"]["c"] == 1.0

    @staticmethod
    def _snapshot_for(values_by_histogram):
        """Build a schema-tagged snapshot by recording real observations."""
        obs.reset_metrics()
        obs.enable_metrics()
        for name, values in values_by_histogram.items():
            for value in values:
                obs.histogram_observe(name, value)
        snap = obs.snapshot()
        obs.reset_metrics()
        return snap

    def test_merge_sums_counters_maxes_gauges_combines_histograms(self):
        a = self._snapshot_for({"h": [1.0, 2.0]})
        a["counters"] = {"cache.hits": 2.0, "only.a": 1.0}
        a["gauges"] = {"g": 1.0}
        b = self._snapshot_for({"h": [9.0]})
        b["counters"] = {"cache.hits": 3.0}
        b["gauges"] = {"g": 4.0, "only.b": 0.5}
        merged = obs.merge_snapshots([a, b])
        assert merged["counters"] == {"cache.hits": 5.0, "only.a": 1.0}
        assert merged["gauges"] == {"g": 4.0, "only.b": 0.5}
        histogram = merged["histograms"]["h"]
        sketch_state = histogram.pop("sketch")
        assert histogram == {
            "count": 3, "total": 12.0, "min": 1.0, "max": 9.0,
        }
        assert sketch_state["count"] == 3

    def test_merge_is_shard_order_invariant(self):
        a = self._snapshot_for({"h": [float(v) for v in range(1, 50)]})
        b = self._snapshot_for({"h": [float(v) for v in range(50, 101)]})
        unsharded = self._snapshot_for(
            {"h": [float(v) for v in range(1, 101)]}
        )
        ab = obs.merge_snapshots([a, b])
        ba = obs.merge_snapshots([b, a])
        assert ab == ba
        assert ab["histograms"]["h"]["sketch"] == (
            unsharded["histograms"]["h"]["sketch"]
        )

    def test_merge_does_not_mutate_inputs(self):
        a = self._snapshot_for({"h": [1.0]})
        b = self._snapshot_for({"h": [2.0]})
        import copy

        a_before = copy.deepcopy(a)
        obs.merge_snapshots([a, b])
        assert a == a_before

    def test_merge_rejects_schema_mismatch(self):
        with pytest.raises(ValueError, match="schema"):
            obs.merge_snapshots([{"schema": 99}])


class TestEngineCounters:
    """The instrumented engines emit the documented metric names."""

    def _ring_pair(self):
        chip = FabricationProcess().fabricate(16, np.random.default_rng(5))
        top = ConfigurableRO(chip=chip, unit_indices=np.arange(8))
        bottom = ConfigurableRO(chip=chip, unit_indices=np.arange(8, 16))
        return top, bottom

    def test_scalar_selector_counter(self):
        obs.enable_metrics()
        rng = np.random.default_rng(0)
        select_case1(rng.normal(size=8), rng.normal(size=8))
        counters = obs.snapshot()["counters"]
        assert counters["selector.case1.scalar_calls"] == 1.0

    def test_batch_selector_counters(self):
        obs.enable_metrics()
        rng = np.random.default_rng(0)
        select_case1_batch(rng.normal(size=(6, 8)), rng.normal(size=(6, 8)))
        counters = obs.snapshot()["counters"]
        assert counters["selector.case1.calls"] == 1.0
        assert counters["selector.case1.rows"] == 6.0

    def test_enroll_noise_elements_counter(self):
        obs.enable_metrics()
        top, bottom = self._ring_pair()
        measurer = DelayMeasurer(repeats=3)
        measure_ddiffs_leave_one_out_batch(measurer, [top, bottom])
        counters = obs.snapshot()["counters"]
        # 2 rings x (8 + 1) leave-one-out configs x 3 repeats
        assert counters[f"noise.elements.{ENROLL_DRAW_ORDER}"] == 2 * 9 * 3

    def test_disabled_engines_emit_nothing(self):
        top, bottom = self._ring_pair()
        measure_ddiffs_leave_one_out_batch(DelayMeasurer(), [top, bottom])
        rng = np.random.default_rng(0)
        select_case1(rng.normal(size=8), rng.normal(size=8))
        assert obs.snapshot()["counters"] == {}


class TestThreadSafety:
    """The registry must not lose updates under concurrent recorders.

    The serve layer records counters and latency histograms from many
    connection-handler threads at once (PR 6); an unlocked
    read-modify-write silently drops increments under that load.  These
    hammer tests assert *exact* totals, which only a locked registry can
    guarantee.
    """

    THREADS = 8
    ITERATIONS = 25_000

    def _hammer(self, record):
        import threading

        start = threading.Barrier(self.THREADS)

        def body():
            start.wait()
            for _ in range(self.ITERATIONS):
                record()

        workers = [
            threading.Thread(target=body) for _ in range(self.THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

    def test_concurrent_counter_adds_are_exact(self):
        obs.enable_metrics()
        self._hammer(lambda: obs.counter_add("hammer.counter"))
        total = obs.snapshot()["counters"]["hammer.counter"]
        assert total == float(self.THREADS * self.ITERATIONS)

    def test_concurrent_histogram_observes_are_exact(self):
        obs.enable_metrics()
        self._hammer(lambda: obs.histogram_observe("hammer.histogram", 2.0))
        histogram = obs.snapshot()["histograms"]["hammer.histogram"]
        expected = self.THREADS * self.ITERATIONS
        assert histogram["count"] == expected
        assert histogram["total"] == 2.0 * expected
        assert histogram["min"] == 2.0
        assert histogram["max"] == 2.0

    def test_concurrent_mixed_recording_with_snapshots(self):
        # Snapshots racing recorders must stay internally consistent:
        # a histogram's total is always count * value for a constant
        # observed value, even mid-hammer.
        import threading

        obs.enable_metrics()
        stop = threading.Event()
        inconsistencies = []

        def reader():
            while not stop.is_set():
                snap = obs.snapshot()["histograms"].get("hammer.mixed")
                if snap is not None and snap["total"] != 3.0 * snap["count"]:
                    inconsistencies.append(snap)

        observer = threading.Thread(target=reader)
        observer.start()
        try:
            self._hammer(lambda: obs.histogram_observe("hammer.mixed", 3.0))
        finally:
            stop.set()
            observer.join()
        assert not inconsistencies
        histogram = obs.snapshot()["histograms"]["hammer.mixed"]
        assert histogram["count"] == self.THREADS * self.ITERATIONS
