"""Tests of the challenge-response interface."""

import numpy as np
import pytest

from repro.crypto.crp import Challenge, ChallengeResponseInterface


@pytest.fixture()
def interface(rng):
    return ChallengeResponseInterface(rng.integers(0, 2, 64).astype(bool))


class TestChallenge:
    def test_response_bits(self):
        challenge = Challenge(indices=(0, 1, 2, 3), fold=2)
        assert challenge.response_bits == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Challenge(indices=())
        with pytest.raises(ValueError):
            Challenge(indices=(0, 1, 2), fold=2)
        with pytest.raises(ValueError):
            Challenge(indices=(0, 1), fold=0)


class TestChallengeResponseInterface:
    def test_respond_unfolded(self, interface):
        challenge = Challenge(indices=(0, 5, 9))
        answer = interface.respond(challenge)
        assert np.array_equal(answer, interface.response[[0, 5, 9]])

    def test_respond_folded_is_xor(self, interface):
        challenge = Challenge(indices=(0, 1, 2, 3), fold=2)
        answer = interface.respond(challenge)
        expected = np.array(
            [
                interface.response[0] ^ interface.response[1],
                interface.response[2] ^ interface.response[3],
            ]
        )
        assert np.array_equal(answer, expected)

    def test_verify_accepts_honest_device(self, interface, rng):
        challenge = interface.generate_challenge(rng, width=8, fold=2)
        answer = interface.respond(challenge)
        assert interface.verify(challenge, answer)

    def test_verify_rejects_wrong_answer(self, interface, rng):
        challenge = interface.generate_challenge(rng, width=8)
        answer = interface.respond(challenge)
        assert not interface.verify(challenge, ~answer)

    def test_verify_rejects_wrong_length(self, interface):
        challenge = Challenge(indices=(0, 1))
        with pytest.raises(ValueError, match="bits"):
            interface.verify(challenge, np.zeros(3, dtype=bool))

    def test_exposure_accounting(self, interface):
        assert interface.exposed_fraction == 0.0
        interface.respond(Challenge(indices=tuple(range(16))))
        assert interface.exposed_fraction == pytest.approx(16 / 64)
        # repeats of the same bits do not add exposure
        interface.respond(Challenge(indices=tuple(range(16))))
        assert interface.exposed_fraction == pytest.approx(16 / 64)

    def test_budget_locks_interface(self, rng):
        interface = ChallengeResponseInterface(
            rng.integers(0, 2, 20).astype(bool), exposure_budget=0.4
        )
        interface.respond(Challenge(indices=tuple(range(10))))
        assert interface.locked  # 50% > 40% budget
        with pytest.raises(RuntimeError, match="locked"):
            interface.respond(Challenge(indices=(11,)))

    def test_verification_costs_no_budget(self, interface, rng):
        challenge = interface.generate_challenge(rng, width=8)
        interface.verify(challenge, np.zeros(8, dtype=bool))
        assert interface.exposed_fraction == 0.0

    def test_out_of_range_challenge(self, interface):
        with pytest.raises(ValueError, match="outside"):
            interface.respond(Challenge(indices=(999,)))
        with pytest.raises(ValueError, match="outside"):
            interface.verify(Challenge(indices=(999,)), np.zeros(1, dtype=bool))

    def test_generate_challenge_distinct_indices(self, interface, rng):
        challenge = interface.generate_challenge(rng, width=32)
        assert len(set(challenge.indices)) == 32

    def test_generate_challenge_width_validation(self, interface, rng):
        with pytest.raises(ValueError):
            interface.generate_challenge(rng, width=0)
        with pytest.raises(ValueError):
            interface.generate_challenge(rng, width=65)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ChallengeResponseInterface(np.zeros(0, dtype=bool))
        with pytest.raises(ValueError):
            ChallengeResponseInterface(
                np.zeros(4, dtype=bool), exposure_budget=0.0
            )
